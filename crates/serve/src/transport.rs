//! Transport-level shared state: readiness, drain, connection
//! accounting, and the bounded worker pool every transport feeds.
//!
//! [`TransportState`] lives on the [`ServeEngine`](crate::ServeEngine)
//! so the `health` and `stats` ops can report transport truth (is the
//! daemon accepting? how many connections? how deep is the queue?)
//! without the engine holding a reference to any particular listener.
//! The stdio session, the Unix-socket listener and the TCP supervisor
//! all update the same state; a load balancer probing `health` sees
//! `accepting: false` the moment a drain begins or the admission gate
//! saturates, *before* its next request would be shed.
//!
//! [`WorkerPool`] is the bounded queue + worker threads behind every
//! transport. Each [`Job`] carries its own reply writer, so one pool
//! can serve many connections concurrently: responses route back to
//! the connection that asked, written whole under that connection's
//! lock so lines never tear.

use crate::engine::ServeEngine;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tpp_obs::{obs_event, Level, TraceCtx};

/// A per-connection reply sink, shared between the reader that sheds
/// and the workers that answer. Jobs hold a clone, so a response can
/// still be delivered after the connection's reader has exited — the
/// socket only closes when the last clone drops.
pub type SharedWriter = Arc<Mutex<dyn Write + Send>>;

/// Per-connection request/response accounting, for `serve.conn_closed`
/// events and the closed-without-response invariant.
#[derive(Debug, Default)]
pub struct ConnTrack {
    /// Complete request lines read on this connection.
    pub requests: AtomicU64,
    /// Terminal responses written for this connection.
    pub responses: AtomicU64,
}

/// One queued request: the raw line, the trace context minted at
/// ingestion, the enqueue timestamp, and where the response goes.
pub struct Job {
    /// The raw request line.
    pub line: String,
    /// Trace context minted at ingestion.
    pub trace: TraceCtx,
    /// Enqueue time, for queue-wait accounting.
    pub enqueued: Instant,
    /// The connection's reply sink.
    pub out: SharedWriter,
    /// The connection's accounting (absent on the stdio transport).
    pub track: Option<Arc<ConnTrack>>,
}

/// Live transport state, updated by listeners/readers and reported by
/// the engine's `health` / `stats` ops.
#[derive(Debug, Default)]
pub struct TransportState {
    draining: AtomicBool,
    /// Open admitted connections (TCP transport).
    pub connections: AtomicI64,
    /// Jobs sitting in the bounded queue right now.
    pub queue_depth: AtomicI64,
    /// Connection limit (0 = no TCP transport attached).
    pub max_connections: AtomicU64,
    /// Bounded-queue capacity (0 = unknown).
    pub queue_capacity: AtomicU64,
    /// Connections accepted by the listener (admitted or shed).
    pub conns_accepted: AtomicU64,
    /// Connections shed at admission, before a session started.
    pub conns_shed: AtomicU64,
    /// Connections closed by the idle/read timeout (slow loris).
    pub conn_timeouts: AtomicU64,
    /// Lines discarded for exceeding the per-line byte cap.
    pub overlong_lines: AtomicU64,
    /// Terminal responses that could not be written because the peer
    /// was already gone (e.g. a shed client that reset mid-storm).
    /// Zero under well-behaved clients; the load harness asserts the
    /// client-observed invariant — no *complete* request left without a
    /// terminal response — from the outside, where it must be zero.
    pub undeliverable_responses: AtomicU64,
    /// Requests answered after a drain began (the in-flight tail).
    pub drained_in_flight: AtomicU64,
}

impl TransportState {
    /// Records the transport's limits so saturation is computable.
    pub fn set_limits(&self, max_connections: u64, queue_capacity: u64) {
        self.max_connections
            .store(max_connections, Ordering::Relaxed);
        self.queue_capacity.store(queue_capacity, Ordering::Relaxed);
    }

    /// Begins a graceful drain; returns `true` for the call that
    /// actually flipped the flag (later calls are idempotent no-ops).
    pub fn begin_drain(&self) -> bool {
        let first = !self.draining.swap(true, Ordering::SeqCst);
        if first {
            obs_event!(Level::Info, "serve.drain_begin");
            tpp_obs::metrics().counter("serve.drain").inc();
        }
        first
    }

    /// A drain has begun: stop reading new requests, answer in-flight.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The admission gate is saturated: at the connection limit, or the
    /// bounded queue is full. Limits of 0 mean "not enforced".
    pub fn saturated(&self) -> bool {
        let max_conns = self.max_connections.load(Ordering::Relaxed);
        if max_conns > 0 && self.connections.load(Ordering::Relaxed) >= max_conns as i64 {
            return true;
        }
        let cap = self.queue_capacity.load(Ordering::Relaxed);
        cap > 0 && self.queue_depth.load(Ordering::Relaxed) >= cap as i64
    }

    /// Readiness for load-balancer probes: accepting new work (not
    /// draining, not saturated).
    pub fn accepting(&self) -> bool {
        !self.draining() && !self.saturated()
    }

    fn queue_inc(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
    }

    fn queue_dec(&self) {
        let d = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
    }
}

/// Writes one response line under the connection's output lock.
/// Returns whether the write (and flush) reached the peer — a dead
/// client must not kill the daemon, but the failure is counted.
pub(crate) fn write_response(out: &SharedWriter, line: &str) -> bool {
    let mut out = out.lock().expect("output lock poisoned");
    writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
}

/// The bounded queue + worker threads shared by every connection of a
/// transport. Dropping the sender (via [`WorkerPool::shutdown`]) lets
/// workers drain everything already queued, then exit — that is the
/// "answer every in-flight request" half of graceful drain.
pub(crate) struct WorkerPool {
    tx: SyncSender<Job>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of `capacity` jobs.
    pub(crate) fn spawn(engine: Arc<ServeEngine>, workers: usize, capacity: usize) -> WorkerPool {
        let (tx, rx): (SyncSender<Job>, Receiver<Job>) =
            std::sync::mpsc::sync_channel(capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers.max(1));
        for _ in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only while dequeuing.
                let job = match rx.lock().expect("queue lock poisoned").recv() {
                    Ok(job) => job,
                    Err(_) => break, // sender dropped and queue drained
                };
                let t = &engine.transport;
                t.queue_dec();
                if t.draining() {
                    t.drained_in_flight.fetch_add(1, Ordering::Relaxed);
                }
                let wait_us = job.enqueued.elapsed().as_micros() as u64;
                tpp_obs::metrics()
                    .histogram("serve.queue_wait_us")
                    .record(wait_us);
                // The request's trace context spans the whole worker
                // turn; the closing `serve.job` event names the root
                // span and carries the end-to-end duration so
                // reconstruction can close it.
                let _trace = tpp_obs::trace::enter(job.trace);
                obs_event!(Level::Debug, "serve.dequeued", queue_wait_us = wait_us);
                let response = engine.handle_line(&job.line);
                let delivered = write_response(&job.out, &response);
                if let Some(track) = &job.track {
                    track.responses.fetch_add(1, Ordering::Relaxed);
                }
                if !delivered {
                    t.undeliverable_responses.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.write_failed").inc();
                    obs_event!(Level::Warn, "serve.response_undeliverable", path = "worker");
                }
                obs_event!(
                    Level::Debug,
                    "serve.job",
                    duration_us = job.enqueued.elapsed().as_micros() as u64,
                    queue_wait_us = wait_us,
                );
            }));
        }
        WorkerPool { tx, handles }
    }

    /// Enqueues a job, or hands it back when the bounded queue is full
    /// (the caller sheds with an `overloaded` response).
    pub(crate) fn try_submit(&self, engine: &ServeEngine, job: Job) -> Result<(), Job> {
        match self.tx.try_send(job) {
            Ok(()) => {
                engine.transport.queue_inc();
                Ok(())
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    /// Stops accepting new jobs, answers everything queued, and joins
    /// the workers.
    pub(crate) fn shutdown(self) {
        drop(self.tx);
        for h in self.handles {
            let _ = h.join();
        }
    }
}
