//! Transport-level shared state: readiness, drain, connection
//! accounting, and the supervised bounded worker pool every transport
//! feeds.
//!
//! [`TransportState`] lives on the [`ServeEngine`](crate::ServeEngine)
//! so the `health` and `stats` ops can report transport truth (is the
//! daemon accepting? how many connections? how deep is the queue? how
//! many workers are actually alive?) without the engine holding a
//! reference to any particular listener. The stdio session, the
//! Unix-socket listener and the TCP supervisor all update the same
//! state; a load balancer probing `health` sees `accepting: false` the
//! moment a drain begins, the admission gate saturates, or the worker
//! pool dies past recovery — *before* its next request would starve.
//!
//! [`WorkerPool`] is the bounded queue + worker threads behind every
//! transport, plus a supervisor thread that keeps the pool alive:
//! each worker stamps a heartbeat word when it picks up a job, and the
//! supervisor respawns workers that panicked out (a panic escaping the
//! per-request `catch_unwind`) and replaces workers wedged past a
//! progress budget — up to a restart budget, with backoff, dumping the
//! flight recorder on each death so the post-mortem survives the
//! thread. A dying worker's in-flight job is rescued by a drop guard
//! that writes a terminal response during the unwind, so even a
//! worker-killing fault never breaks the one-response-per-request
//! contract.

use crate::engine::{BatchItem, ServeEngine};
use crate::protocol::{parse_request, Op};
use std::collections::VecDeque;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tpp_obs::{obs_event, Level, TraceCtx};

/// A per-connection reply sink, shared between the reader that sheds
/// and the workers that answer. Jobs hold a clone, so a response can
/// still be delivered after the connection's reader has exited — the
/// socket only closes when the last clone drops.
pub type SharedWriter = Arc<Mutex<dyn Write + Send>>;

/// Per-connection request/response accounting, for `serve.conn_closed`
/// events and the closed-without-response invariant.
#[derive(Debug, Default)]
pub struct ConnTrack {
    /// Complete request lines read on this connection.
    pub requests: AtomicU64,
    /// Terminal responses written for this connection.
    pub responses: AtomicU64,
}

/// One queued request: the raw line, the trace context minted at
/// ingestion, the enqueue timestamp, and where the response goes.
pub struct Job {
    /// The raw request line.
    pub line: String,
    /// Trace context minted at ingestion.
    pub trace: TraceCtx,
    /// Enqueue time, for queue-wait accounting.
    pub enqueued: Instant,
    /// The connection's reply sink.
    pub out: SharedWriter,
    /// The connection's accounting (absent on the stdio transport).
    pub track: Option<Arc<ConnTrack>>,
}

/// The policy identity of a queued request line, at the protocol level:
/// two lines with equal keys resolve the same `PolicyKey` (dataset,
/// constraint signature, source), because the constraint signature is
/// pure in the resolved dataset — same dataset name, same signature.
/// Computed by [`batch_key`] without resolving the dataset, so the
/// dequeue path can match queued jobs with a parse instead of a load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BatchKey {
    op: Op,
    dataset: String,
    start: Option<String>,
    seed: u64,
    episodes: Option<u64>,
}

/// The batch key of a raw request line, or `None` for anything that
/// must not batch: non-planning ops, lines that do not parse, or
/// requests without a dataset. `plan` keys carry the training triple
/// (seed, episodes, start); `recommend` keys only the dataset + start —
/// every recommend against a dataset reads the same newest checkpoint
/// generation.
pub(crate) fn batch_key(line: &str) -> Option<BatchKey> {
    let req = parse_request(line).ok()?;
    let dataset = req.dataset?;
    match req.op {
        Op::Plan => Some(BatchKey {
            op: req.op,
            dataset,
            start: req.start,
            seed: req.seed,
            episodes: req.episodes,
        }),
        Op::Recommend => Some(BatchKey {
            op: req.op,
            dataset,
            start: req.start,
            seed: 0,
            episodes: None,
        }),
        _ => None,
    }
}

/// Turn-level batching policy: when a worker dequeues a job with a
/// batchable key, it also drains every queued job sharing that key —
/// up to `max` members per turn, lingering up to `linger` for more to
/// arrive — and answers the whole batch from one policy resolution.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum members per batch; `1` disables batching entirely.
    pub max: usize,
    /// How long the worker waits for more same-key jobs after draining
    /// the queue. Zero (the default) never adds latency: batches form
    /// only from backlog that already exists.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max: 16,
            linger: Duration::ZERO,
        }
    }
}

/// Supervision policy for the worker pool.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Disabled supervision never respawns: a worker that panics out
    /// stays dead (the pool still flips `accepting` off when the last
    /// one dies, so the failure is loud, not silent).
    pub enabled: bool,
    /// Supervisor tick interval.
    pub poll_interval: Duration,
    /// A worker busy on one job longer than this is wedged: it is
    /// retired (it finishes or not on its own time) and replaced.
    /// `None` disables wedge detection.
    pub wedge_budget: Option<Duration>,
    /// Total respawns the supervisor may spend over the pool's life.
    pub max_restarts: u32,
    /// Delay between noting a death and respawning the slot.
    pub restart_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            poll_interval: Duration::from_millis(20),
            wedge_budget: Some(Duration::from_secs(30)),
            max_restarts: 16,
            restart_backoff: Duration::from_millis(50),
        }
    }
}

/// Live transport state, updated by listeners/readers/workers and
/// reported by the engine's `health` / `stats` ops.
#[derive(Debug, Default)]
pub struct TransportState {
    draining: AtomicBool,
    /// Open admitted connections (TCP transport).
    pub connections: AtomicI64,
    /// Jobs sitting in the bounded queue right now.
    pub queue_depth: AtomicI64,
    /// Connection limit (0 = no TCP transport attached).
    pub max_connections: AtomicU64,
    /// Bounded-queue capacity (0 = unknown).
    pub queue_capacity: AtomicU64,
    /// Connections accepted by the listener (admitted or shed).
    pub conns_accepted: AtomicU64,
    /// Connections shed at admission, before a session started.
    pub conns_shed: AtomicU64,
    /// Connections closed by the idle/read timeout (slow loris).
    pub conn_timeouts: AtomicU64,
    /// Lines discarded for exceeding the per-line byte cap.
    pub overlong_lines: AtomicU64,
    /// Terminal responses that could not be written because the peer
    /// was already gone (e.g. a shed client that reset mid-storm).
    /// Zero under well-behaved clients; the load harness asserts the
    /// client-observed invariant — no *complete* request left without a
    /// terminal response — from the outside, where it must be zero.
    pub undeliverable_responses: AtomicU64,
    /// Requests answered after a drain began (the in-flight tail).
    pub drained_in_flight: AtomicU64,
    /// Worker threads the pool was configured with (0 = no pool yet).
    pub workers_configured: AtomicU64,
    /// Worker threads currently running (wedged-but-retired workers
    /// still count until they actually finish).
    pub workers_alive: AtomicI64,
    /// Workers respawned by the supervisor (deaths and wedge
    /// replacements both spend the restart budget).
    pub worker_restarts: AtomicU64,
    /// Workers that died (a panic escaped the per-request isolation).
    pub worker_deaths: AtomicU64,
    /// Workers retired for being wedged past the progress budget.
    pub worker_wedged: AtomicU64,
    /// In-flight jobs rescued with a terminal response while their
    /// worker was dying.
    pub worker_rescued: AtomicU64,
    /// Multi-member batches formed at dequeue (size ≥ 2).
    pub batches_formed: AtomicU64,
    /// Total members across all formed batches.
    pub batch_members: AtomicU64,
    /// Policy resolutions skipped by batching: every batch member past
    /// the first shares the leader's single cache lookup / checkpoint
    /// deserialize / training run.
    pub amortized_loads: AtomicU64,
    /// The pool is supervised (deaths are transient, not terminal).
    supervised: AtomicBool,
    /// Set by the supervisor when every worker is gone and the restart
    /// budget is spent: the pool can never answer again.
    pool_dead: AtomicBool,
}

impl TransportState {
    /// Records the transport's limits so saturation is computable.
    pub fn set_limits(&self, max_connections: u64, queue_capacity: u64) {
        self.max_connections
            .store(max_connections, Ordering::Relaxed);
        self.queue_capacity.store(queue_capacity, Ordering::Relaxed);
    }

    /// Begins a graceful drain; returns `true` for the call that
    /// actually flipped the flag (later calls are idempotent no-ops).
    pub fn begin_drain(&self) -> bool {
        let first = !self.draining.swap(true, Ordering::SeqCst);
        if first {
            obs_event!(Level::Info, "serve.drain_begin");
            tpp_obs::metrics().counter("serve.drain").inc();
        }
        first
    }

    /// A drain has begun: stop reading new requests, answer in-flight.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The admission gate is saturated: at the connection limit, or the
    /// bounded queue is full. Limits of 0 mean "not enforced".
    pub fn saturated(&self) -> bool {
        let max_conns = self.max_connections.load(Ordering::Relaxed);
        if max_conns > 0 && self.connections.load(Ordering::Relaxed) >= max_conns as i64 {
            return true;
        }
        let cap = self.queue_capacity.load(Ordering::Relaxed);
        cap > 0 && self.queue_depth.load(Ordering::Relaxed) >= cap as i64
    }

    /// The pool can never answer another queued request: every worker
    /// is gone and no respawn is coming (restart budget spent, or
    /// supervision disabled). Queuing into a dead pool is the
    /// accept-and-starve failure mode — callers must shed instead.
    pub fn workers_dead(&self) -> bool {
        if self.pool_dead.load(Ordering::SeqCst) {
            return true;
        }
        self.workers_configured.load(Ordering::Relaxed) > 0
            && !self.supervised.load(Ordering::Relaxed)
            && self.workers_alive.load(Ordering::SeqCst) <= 0
    }

    /// Readiness for load-balancer probes: accepting new work (not
    /// draining, not saturated, workers able to answer).
    pub fn accepting(&self) -> bool {
        !self.draining() && !self.saturated() && !self.workers_dead()
    }

    fn queue_inc(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
    }

    fn queue_dec(&self) {
        let d = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
    }

    fn worker_started(&self) {
        let n = self.workers_alive.fetch_add(1, Ordering::SeqCst) + 1;
        tpp_obs::metrics()
            .gauge("serve.workers_alive")
            .set(n.max(0) as f64);
    }

    fn worker_exited(&self) {
        let n = self.workers_alive.fetch_sub(1, Ordering::SeqCst) - 1;
        tpp_obs::metrics()
            .gauge("serve.workers_alive")
            .set(n.max(0) as f64);
    }
}

/// Counts a recovered lock poisoning: the panic that poisoned the lock
/// is already being handled elsewhere; the plain data under these locks
/// (an output byte stream, a job queue, a cache map) is never left in a
/// torn state, so the right response is to keep serving, loudly.
/// `pub(crate)` so the cache and engine layers recover with the same
/// counter and discipline.
pub(crate) fn count_lock_recovered(which: &'static str) {
    tpp_obs::metrics().counter("serve.lock_recovered").inc();
    obs_event!(Level::Warn, "serve.lock_recovered", lock = which);
}

/// Writes one response line under the connection's output lock.
/// Returns whether the write (and flush) reached the peer — a dead
/// client must not kill the daemon, but the failure is counted.
///
/// A poisoned lock is recovered, not propagated: the writer is a plain
/// byte sink (the worst a mid-`writeln!` panic leaves behind is a torn
/// line the client's framing already tolerates), and propagating would
/// cascade one worker's death into every worker that shares the sink.
pub(crate) fn write_response(out: &SharedWriter, line: &str) -> bool {
    let mut out = out.lock().unwrap_or_else(|poisoned| {
        count_lock_recovered("output");
        poisoned.into_inner()
    });
    writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
}

#[derive(Default)]
struct JobQueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded job queue behind the worker pool. Replaces a plain
/// `sync_channel` so the dequeue path can *drain* — pull every queued
/// job matching a batch key in one critical section — which a channel
/// cannot express. Semantics otherwise match the channel it replaced:
/// `try_push` fails on full or closed, `pop` blocks until a job or
/// close-and-empty, and closing lets workers drain the backlog before
/// exiting.
pub(crate) struct JobQueue {
    inner: Mutex<JobQueueInner>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(JobQueueInner::default()),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// A poisoned queue lock is recovered: the `VecDeque` under it is
    /// never left torn by an unwinding holder, and giving up here would
    /// kill every worker in turn.
    fn lock(&self) -> std::sync::MutexGuard<'_, JobQueueInner> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            count_lock_recovered("queue");
            poisoned.into_inner()
        })
    }

    /// Enqueues a job, or hands it back when the queue is full or
    /// closed (the caller sheds).
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.lock();
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        // Wake everyone: a lingering batch drainer may be waiting on
        // the same condvar as idle workers.
        self.cond.notify_all();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed
    /// *and* empty — the backlog is always drained before `None`.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).unwrap_or_else(|poisoned| {
                count_lock_recovered("queue");
                poisoned.into_inner()
            });
        }
    }

    /// Non-blocking pop, for the shutdown post-mortem drain.
    fn try_pop(&self) -> Option<Job> {
        self.lock().jobs.pop_front()
    }

    /// Extracts up to `max_more` queued jobs whose line matches `key`,
    /// from anywhere in the queue; non-matching jobs keep their FIFO
    /// order. With a non-zero `linger` the worker then waits for more
    /// same-key arrivals until the cap or the linger deadline — never
    /// past a close.
    fn drain_matching(&self, key: &BatchKey, max_more: usize, linger: Duration) -> Vec<Job> {
        let mut out = Vec::new();
        if max_more == 0 {
            return out;
        }
        let deadline = (!linger.is_zero()).then(|| Instant::now() + linger);
        let mut inner = self.lock();
        loop {
            let mut i = 0;
            while i < inner.jobs.len() && out.len() < max_more {
                if batch_key(&inner.jobs[i].line).as_ref() == Some(key) {
                    out.extend(inner.jobs.remove(i));
                } else {
                    i += 1;
                }
            }
            if out.len() >= max_more || inner.closed {
                break;
            }
            let Some(deadline) = deadline else { break };
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _) = self
                .cond
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|poisoned| {
                    count_lock_recovered("queue");
                    poisoned.into_inner()
                });
            inner = next;
        }
        out
    }

    /// Closes the queue: pushes fail from now on, and workers exit once
    /// the backlog is drained.
    fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }
}

/// Per-worker heartbeat/progress word, shared with the supervisor.
#[derive(Debug, Default)]
struct WorkerCtl {
    /// 0 = idle; otherwise (ms since pool epoch when the current job
    /// was dequeued) + 1. The supervisor compares this against the
    /// wedge budget.
    busy_since_ms: AtomicU64,
    /// Jobs completed by this worker (progress, for stats/debugging).
    jobs_done: AtomicU64,
    /// Set by the supervisor when it has retired this worker (wedged):
    /// the worker exits after finishing its current job instead of
    /// dequeuing another.
    replaced: AtomicBool,
    /// Set by the worker on a normal exit (queue closed or retired) —
    /// a finished thread without this flag died of a panic.
    exited_clean: AtomicBool,
}

/// Rescues a dying worker's in-flight job: if this guard drops while
/// still armed, `handle_line` is unwinding, and the client would never
/// get a response — so the guard writes a terminal error response
/// (echoing the id) during the unwind. Everything it calls is
/// panic-free plain code, so the unwind cannot double-panic.
struct JobRescue<'a> {
    engine: &'a ServeEngine,
    job: &'a Job,
    armed: bool,
}

impl Drop for JobRescue<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let t = &self.engine.transport;
        t.worker_rescued.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.worker_rescued").inc();
        obs_event!(Level::Error, "serve.job_rescued");
        let response = self.engine.worker_crash_response(&self.job.line);
        let delivered = write_response(&self.job.out, &response);
        if let Some(track) = &self.job.track {
            track.responses.fetch_add(1, Ordering::Relaxed);
        }
        if !delivered {
            t.undeliverable_responses.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.write_failed").inc();
        }
    }
}

/// Rescues a dying worker's in-flight *batch*: if this guard drops
/// while still armed, `handle_batch` is unwinding mid-batch — every
/// member not yet delivered gets a terminal crash response during the
/// unwind, so a poison pill in one batch slot never swallows its
/// neighbours' responses. Everything here is panic-free plain code.
struct BatchRescue<'a> {
    engine: &'a ServeEngine,
    jobs: &'a [Job],
    answered: &'a [AtomicBool],
    armed: bool,
}

impl Drop for BatchRescue<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let t = &self.engine.transport;
        for (job, done) in self.jobs.iter().zip(self.answered) {
            if done.load(Ordering::SeqCst) {
                continue;
            }
            let _trace = tpp_obs::trace::enter(job.trace);
            t.worker_rescued.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.worker_rescued").inc();
            obs_event!(Level::Error, "serve.job_rescued", batched = true);
            let response = self.engine.worker_crash_response(&job.line);
            deliver_to_job(self.engine, job, &response);
        }
    }
}

/// Writes one response to a job's connection and settles its
/// accounting (response count, undeliverable tally).
fn deliver_to_job(engine: &ServeEngine, job: &Job, response: &str) {
    let delivered = write_response(&job.out, response);
    if let Some(track) = &job.track {
        track.responses.fetch_add(1, Ordering::Relaxed);
    }
    if !delivered {
        engine
            .transport
            .undeliverable_responses
            .fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.write_failed").inc();
        obs_event!(Level::Warn, "serve.response_undeliverable", path = "worker");
    }
}

/// Decrements `workers_alive` however the worker thread exits —
/// normal return or panic unwind.
struct AliveGuard<'a>(&'a TransportState);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.worker_exited();
    }
}

/// The body of one worker thread: dequeue, stamp the heartbeat, gather
/// a same-key batch from the backlog, answer, stamp progress. Exits
/// when the queue closes or the supervisor has retired it.
fn worker_loop(
    engine: Arc<ServeEngine>,
    queue: Arc<JobQueue>,
    ctl: Arc<WorkerCtl>,
    epoch: Instant,
    batch: BatchConfig,
) {
    let _alive = AliveGuard(&engine.transport);
    loop {
        if ctl.replaced.load(Ordering::SeqCst) {
            break; // retired by the supervisor; a replacement is running
        }
        let Some(job) = queue.pop() else {
            break; // queue closed and drained
        };
        ctl.busy_since_ms
            .store(epoch.elapsed().as_millis() as u64 + 1, Ordering::SeqCst);
        // Batch formation: drain every queued job sharing this job's
        // policy key (matched jobs jump ahead of non-matching earlier
        // arrivals; non-members keep their FIFO order among
        // themselves). Linger is bounded and zero by default, so an
        // empty queue costs nothing.
        let followers = if batch.max > 1 {
            match batch_key(&job.line) {
                Some(key) => queue.drain_matching(&key, batch.max - 1, batch.linger),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let t = &engine.transport;
        let members: Vec<Job> = std::iter::once(job).chain(followers).collect();
        for member in &members {
            t.queue_dec();
            if t.draining() {
                t.drained_in_flight.fetch_add(1, Ordering::Relaxed);
            }
            let wait_us = member.enqueued.elapsed().as_micros() as u64;
            tpp_obs::metrics()
                .histogram("serve.queue_wait_us")
                .record(wait_us);
            // Each member's trace context spans its whole worker turn;
            // the closing `serve.job` event names the root span and
            // carries the end-to-end duration so reconstruction can
            // close it.
            let _trace = tpp_obs::trace::enter(member.trace);
            obs_event!(Level::Debug, "serve.dequeued", queue_wait_us = wait_us);
        }
        if members.len() == 1 {
            let job = &members[0];
            let _trace = tpp_obs::trace::enter(job.trace);
            let mut rescue = JobRescue {
                engine: &engine,
                job,
                armed: true,
            };
            let response = engine.handle_line(&job.line);
            rescue.armed = false;
            drop(rescue);
            deliver_to_job(&engine, job, &response);
        } else {
            // Batch turn: one policy resolution answers every member;
            // responses fan back out to each member's own connection
            // writer as they are produced. The rescue guard answers
            // every member a mid-batch panic leaves behind.
            let answered: Vec<AtomicBool> =
                members.iter().map(|_| AtomicBool::new(false)).collect();
            let mut rescue = BatchRescue {
                engine: &engine,
                jobs: &members,
                answered: &answered,
                armed: true,
            };
            let items: Vec<BatchItem<'_>> = members
                .iter()
                .map(|j| BatchItem {
                    line: &j.line,
                    trace: j.trace,
                })
                .collect();
            engine.handle_batch(&items, &mut |idx, response| {
                answered[idx].store(true, Ordering::SeqCst);
                deliver_to_job(&engine, &members[idx], &response);
            });
            rescue.armed = false;
            drop(rescue);
        }
        for member in &members {
            let _trace = tpp_obs::trace::enter(member.trace);
            obs_event!(
                Level::Debug,
                "serve.job",
                duration_us = member.enqueued.elapsed().as_micros() as u64,
                batch_size = members.len() as u64,
            );
        }
        ctl.jobs_done
            .fetch_add(members.len() as u64, Ordering::Relaxed);
        ctl.busy_since_ms.store(0, Ordering::SeqCst);
    }
    ctl.exited_clean.store(true, Ordering::SeqCst);
}

/// One supervised worker slot.
struct WorkerSlot {
    handle: Option<std::thread::JoinHandle<()>>,
    ctl: Arc<WorkerCtl>,
    /// Death already counted/dumped (avoid re-noting every tick while
    /// waiting out the restart backoff).
    death_noted: bool,
    /// Respawn no earlier than this.
    respawn_after: Option<Instant>,
}

struct PoolState {
    slots: Vec<WorkerSlot>,
    /// Wedged workers retired from their slot: they finish (or not) on
    /// their own time and are joined at shutdown.
    retired: Vec<std::thread::JoinHandle<()>>,
    restarts_used: u32,
}

/// The bounded queue + supervised worker threads shared by every
/// connection of a transport. Dropping the sender (via
/// [`WorkerPool::shutdown`]) lets workers drain everything already
/// queued, then exit — that is the "answer every in-flight request"
/// half of graceful drain.
pub(crate) struct WorkerPool {
    queue: Arc<JobQueue>,
    engine: Arc<ServeEngine>,
    state: Arc<Mutex<PoolState>>,
    stop: Arc<AtomicBool>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

fn lock_pool(state: &Mutex<PoolState>) -> std::sync::MutexGuard<'_, PoolState> {
    // Plain-data critical section: a poisoned lock is still valid.
    state.lock().unwrap_or_else(|e| e.into_inner())
}

fn spawn_worker(
    engine: &Arc<ServeEngine>,
    queue: &Arc<JobQueue>,
    epoch: Instant,
    batch: &BatchConfig,
) -> (std::thread::JoinHandle<()>, Arc<WorkerCtl>) {
    let ctl = Arc::new(WorkerCtl::default());
    // Count the worker alive before its thread runs, so a supervisor
    // tick between spawn and first instruction never sees a dead pool.
    engine.transport.worker_started();
    let handle = {
        let engine = Arc::clone(engine);
        let queue = Arc::clone(queue);
        let ctl = Arc::clone(&ctl);
        let batch = batch.clone();
        std::thread::spawn(move || worker_loop(engine, queue, ctl, epoch, batch))
    };
    (handle, ctl)
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of `capacity` jobs,
    /// supervised per `config`, batching per `batch`.
    pub(crate) fn spawn_with(
        engine: Arc<ServeEngine>,
        workers: usize,
        capacity: usize,
        config: SupervisorConfig,
        batch: BatchConfig,
    ) -> WorkerPool {
        let queue = Arc::new(JobQueue::new(capacity.max(1)));
        let epoch = Instant::now();
        let workers = workers.max(1);
        engine
            .transport
            .workers_configured
            .store(workers as u64, Ordering::Relaxed);
        engine
            .transport
            .supervised
            .store(config.enabled, Ordering::Relaxed);
        let mut slots = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (handle, ctl) = spawn_worker(&engine, &queue, epoch, &batch);
            slots.push(WorkerSlot {
                handle: Some(handle),
                ctl,
                death_noted: false,
                respawn_after: None,
            });
        }
        let state = Arc::new(Mutex::new(PoolState {
            slots,
            retired: Vec::new(),
            restarts_used: 0,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = config.enabled.then(|| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            let batch = batch.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(config.poll_interval);
                    supervise_tick(&engine, &queue, &state, &config, epoch, &batch);
                }
            })
        });
        WorkerPool {
            queue,
            engine,
            state,
            stop,
            supervisor,
        }
    }

    /// Enqueues a job, or hands it back when the bounded queue is full
    /// or the pool can never answer it (the caller sheds with a
    /// terminal response).
    pub(crate) fn try_submit(&self, engine: &ServeEngine, job: Job) -> Result<(), Job> {
        if engine.transport.workers_dead() {
            return Err(job);
        }
        match self.queue.try_push(job) {
            Ok(()) => {
                engine.transport.queue_inc();
                Ok(())
            }
            Err(job) => Err(job),
        }
    }

    /// Stops the supervisor, stops accepting new jobs, answers
    /// everything queued, and joins the workers. Jobs a dead pool left
    /// in the queue are answered inline here — shutdown is the last
    /// chance to keep the one-response-per-request contract.
    pub(crate) fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(sup) = self.supervisor {
            let _ = sup.join();
        }
        self.queue.close();
        {
            let mut state = lock_pool(&self.state);
            for slot in &mut state.slots {
                if let Some(handle) = slot.handle.take() {
                    let _ = handle.join();
                }
            }
            for handle in state.retired.drain(..) {
                let _ = handle.join();
            }
        }
        // Post-mortem drain: a pool whose workers all died before the
        // queue closed leaves jobs behind. Answer them inline (with
        // panic isolation — one of them may be the poison that killed
        // the pool).
        while let Some(job) = self.queue.try_pop() {
            self.engine.transport.queue_dec();
            let response = catch_unwind(AssertUnwindSafe(|| self.engine.handle_line(&job.line)))
                .unwrap_or_else(|_| self.engine.worker_crash_response(&job.line));
            let delivered = write_response(&job.out, &response);
            if let Some(track) = &job.track {
                track.responses.fetch_add(1, Ordering::Relaxed);
            }
            if !delivered {
                self.engine
                    .transport
                    .undeliverable_responses
                    .fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.write_failed").inc();
            }
            obs_event!(Level::Warn, "serve.postmortem_answered");
        }
    }
}

/// One supervisor pass over the slots: note deaths, respawn within
/// budget, retire wedged workers, and declare the pool dead when
/// nothing can ever answer again.
fn supervise_tick(
    engine: &Arc<ServeEngine>,
    queue: &Arc<JobQueue>,
    state: &Mutex<PoolState>,
    config: &SupervisorConfig,
    epoch: Instant,
    batch: &BatchConfig,
) {
    let t = &engine.transport;
    let now = Instant::now();
    let now_ms = epoch.elapsed().as_millis() as u64;
    let mut state = lock_pool(state);
    let PoolState {
        slots,
        retired,
        restarts_used,
    } = &mut *state;
    for slot in slots.iter_mut() {
        let finished = slot.handle.as_ref().map_or(true, |h| h.is_finished());
        if finished {
            if slot.ctl.exited_clean.load(Ordering::SeqCst) {
                continue; // normal drain exit, not a death
            }
            if !slot.death_noted {
                slot.death_noted = true;
                slot.respawn_after = Some(now + config.restart_backoff);
                t.worker_deaths.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.worker_deaths").inc();
                obs_event!(
                    Level::Error,
                    "serve.worker_died",
                    jobs_done = slot.ctl.jobs_done.load(Ordering::Relaxed),
                );
                engine.dump_flight("worker");
            }
            let due = slot.respawn_after.map_or(true, |at| now >= at);
            if due && *restarts_used < config.max_restarts {
                if let Some(handle) = slot.handle.take() {
                    let _ = handle.join(); // finished; reclaim promptly
                }
                let (handle, ctl) = spawn_worker(engine, queue, epoch, batch);
                slot.handle = Some(handle);
                slot.ctl = ctl;
                slot.death_noted = false;
                slot.respawn_after = None;
                *restarts_used += 1;
                t.worker_restarts.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.worker_restarts").inc();
                obs_event!(
                    Level::Warn,
                    "serve.worker_respawned",
                    restarts_used = *restarts_used as u64,
                    max_restarts = config.max_restarts as u64,
                );
            }
            continue;
        }
        // Wedge detection: busy on one job past the progress budget.
        if let Some(budget) = config.wedge_budget {
            let busy = slot.ctl.busy_since_ms.load(Ordering::SeqCst);
            let wedged = busy != 0
                && now_ms.saturating_sub(busy - 1) > budget.as_millis() as u64
                && !slot.ctl.replaced.load(Ordering::SeqCst);
            if wedged {
                slot.ctl.replaced.store(true, Ordering::SeqCst);
                t.worker_wedged.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.worker_wedged").inc();
                obs_event!(
                    Level::Error,
                    "serve.worker_wedged",
                    busy_ms = now_ms.saturating_sub(busy - 1),
                    budget_ms = budget.as_millis() as u64,
                );
                engine.dump_flight("wedged");
                if let Some(handle) = slot.handle.take() {
                    retired.push(handle);
                }
                if *restarts_used < config.max_restarts {
                    let (handle, ctl) = spawn_worker(engine, queue, epoch, batch);
                    slot.handle = Some(handle);
                    slot.ctl = ctl;
                    slot.death_noted = false;
                    slot.respawn_after = None;
                    *restarts_used += 1;
                    t.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.worker_restarts").inc();
                } else {
                    // Budget spent: the slot stays empty; the retired
                    // worker may still finish its job eventually.
                    slot.ctl.exited_clean.store(true, Ordering::SeqCst);
                }
            }
        }
    }
    // The pool is dead when no worker is alive and no respawn can ever
    // happen. (While the backoff window is open or budget remains,
    // alive == 0 is a transient state, not death.)
    if t.workers_alive.load(Ordering::SeqCst) <= 0
        && *restarts_used >= config.max_restarts
        && !t.pool_dead.swap(true, Ordering::SeqCst)
    {
        tpp_obs::metrics().counter("serve.pool_dead").inc();
        obs_event!(
            Level::Error,
            "serve.pool_dead",
            restarts_used = *restarts_used as u64,
        );
        engine.dump_flight("pool");
    }
}
