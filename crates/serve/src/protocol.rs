//! The NDJSON request/response protocol.
//!
//! One request per input line, one response per request, always. The
//! wire format is deliberately flat JSON objects — parsed with the
//! std-only validating parser from `tpp-obs` and rendered with a small
//! object writer, so the daemon has no serialization dependencies that
//! could differ between builds.
//!
//! Requests:
//!
//! ```json
//! {"op":"recommend","dataset":"ds-ct","id":"r1"}
//! {"op":"plan","dataset":"nyc","deadline_ms":250,"episodes":400,"seed":7}
//! {"op":"health"}
//! {"op":"stats"}
//! ```
//!
//! Responses always carry `ok` and echo `id` when one was given;
//! planning responses add `tier`, `degraded`, `plan`, `score`,
//! `violations` and (when relevant) `deadline_expired` / `retries`.

use tpp_obs::json::{escape_into, parse, Json};

/// A request's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Train a fresh policy under the request budget, then recommend.
    Plan,
    /// Serve from the warm checkpoint / fallback chain (no training).
    Recommend,
    /// Liveness probe: uptime and request counters.
    Health,
    /// Counter snapshot: tiers served, panics isolated, shed load,
    /// queue wait and per-op latency percentiles.
    Stats,
    /// Full metrics-registry exposition: Prometheus-style text plus the
    /// JSON snapshot (with histogram buckets).
    Metrics,
    /// Begin a graceful drain: stop accepting new connections, answer
    /// every in-flight request, then exit. The response acknowledges
    /// the drain (`draining: true`) before the transport winds down.
    Shutdown,
}

impl Op {
    /// Wire name of the operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Plan => "plan",
            Op::Recommend => "recommend",
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The operation.
    pub op: Op,
    /// Dataset name (required for `plan` / `recommend`).
    pub dataset: Option<String>,
    /// Start item code (dataset default when absent).
    pub start: Option<String>,
    /// Training seed (`plan` only; default 0).
    pub seed: u64,
    /// Training episode cap (`plan` only).
    pub episodes: Option<u64>,
    /// Wall-clock budget in milliseconds for this request.
    pub deadline_ms: Option<u64>,
}

fn str_field(obj: &Json, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field {key:?} must be a string")),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(v)) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
            Ok(Some(*v as u64))
        }
        Some(_) => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

/// Parses one request line. Errors are human-readable fragments the
/// engine embeds in a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim()).map_err(|e| format!("invalid json: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a json object".into());
    }
    let op = match str_field(&v, "op")? {
        Some(op) => op,
        None => return Err("missing \"op\"".into()),
    };
    let op = match op.as_str() {
        "plan" => Op::Plan,
        "recommend" => Op::Recommend,
        "health" => Op::Health,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "shutdown" => Op::Shutdown,
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Request {
        id: str_field(&v, "id")?,
        op,
        dataset: str_field(&v, "dataset")?,
        start: str_field(&v, "start")?,
        seed: u64_field(&v, "seed")?.unwrap_or(0),
        episodes: u64_field(&v, "episodes")?,
        deadline_ms: u64_field(&v, "deadline_ms")?,
    })
}

/// Best-effort `id` extraction from a **raw** input line, for response
/// paths that run before (or without) full request validation — shed
/// responses and panic recovery. Any line that parses as a JSON object
/// with a string `id` yields that id, even when the request as a whole
/// is invalid (bad op, wrong field types, …); everything else yields
/// `None`, which those paths render as a well-formed `"id": null`.
pub fn extract_raw_id(line: &str) -> Option<String> {
    let v = parse(line.trim()).ok()?;
    match v.get("id") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// A single-line JSON object writer (insertion-ordered, no trailing
/// comma bookkeeping for callers).
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_into(k, &mut self.buf);
        self.buf.push(':');
    }

    /// Adds a string member.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        escape_into(v, &mut self.buf);
        self
    }

    /// Adds a string member when `v` is `Some`.
    pub fn opt_str(self, k: &str, v: Option<&str>) -> Self {
        match v {
            Some(v) => self.str(k, v),
            None => self,
        }
    }

    /// Adds a string member, writing an explicit `null` when `v` is
    /// `None` (unlike [`opt_str`](Self::opt_str), which omits the key).
    /// Used where the protocol promises the key is always present —
    /// e.g. `id` on shed and panic responses.
    pub fn nullable_str(mut self, k: &str, v: Option<&str>) -> Self {
        match v {
            Some(v) => self.str(k, v),
            None => {
                self.key(k);
                self.buf.push_str("null");
                self
            }
        }
    }

    /// Adds a boolean member.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds an integer member.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float member (`null` when non-finite — valid JSON first).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a member whose value is **pre-rendered JSON text** — used to
    /// embed nested documents (metrics snapshots, latency summaries)
    /// that other components already render. The caller guarantees
    /// `json` is a valid JSON value; nothing is escaped.
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Adds an array-of-strings member.
    pub fn str_arr<S: AsRef<str>>(mut self, k: &str, vs: impl IntoIterator<Item = S>) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            escape_into(v.as_ref(), &mut self.buf);
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text (no newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_plan_request() {
        let r = parse_request(
            r#"{"op":"plan","dataset":"ds-ct","id":"r1","start":"m1","seed":7,"episodes":50,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Plan);
        assert_eq!(r.id.as_deref(), Some("r1"));
        assert_eq!(r.dataset.as_deref(), Some("ds-ct"));
        assert_eq!(r.start.as_deref(), Some("m1"));
        assert_eq!(r.seed, 7);
        assert_eq!(r.episodes, Some(50));
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn minimal_health_request() {
        let r = parse_request(r#"{"op":"health"}"#).unwrap();
        assert_eq!(r.op, Op::Health);
        assert_eq!(r.id, None);
        assert_eq!(r.seed, 0);
    }

    #[test]
    fn metrics_op_parses() {
        let r = parse_request(r#"{"op":"metrics","id":"m1"}"#).unwrap();
        assert_eq!(r.op, Op::Metrics);
        assert_eq!(r.op.as_str(), "metrics");
    }

    #[test]
    fn raw_members_embed_prerendered_json() {
        let line = JsonObj::new()
            .bool("ok", true)
            .raw("nested", r#"{"p50":3,"arr":[1,2]}"#)
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("p50"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"dataset":"ds-ct"}"#)
            .unwrap_err()
            .contains("op"));
        assert!(parse_request(r#"{"op":"destroy"}"#)
            .unwrap_err()
            .contains("destroy"));
        assert!(parse_request(r#"{"op":"plan","seed":-1}"#).is_err());
        assert!(parse_request(r#"{"op":"plan","seed":1.5}"#).is_err());
        assert!(parse_request(r#"{"op":"plan","dataset":7}"#).is_err());
    }

    #[test]
    fn raw_id_survives_invalid_requests() {
        // Valid object, invalid request: the id is still recoverable.
        assert_eq!(
            extract_raw_id(r#"{"op":"destroy","id":"x1"}"#).as_deref(),
            Some("x1")
        );
        assert_eq!(
            extract_raw_id(r#"{"id":"only-an-id","dataset":7}"#).as_deref(),
            Some("only-an-id")
        );
        // Non-string ids and non-object lines yield None.
        assert_eq!(extract_raw_id(r#"{"id":42}"#), None);
        assert_eq!(extract_raw_id(r#"{"id":null}"#), None);
        assert_eq!(extract_raw_id("[1,2]"), None);
        assert_eq!(extract_raw_id("not json at all"), None);
        assert_eq!(extract_raw_id(""), None);
    }

    #[test]
    fn nullable_str_always_emits_the_key() {
        let line = JsonObj::new()
            .nullable_str("id", None)
            .nullable_str("other", Some("v"))
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("other").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn json_obj_renders_valid_json() {
        let line = JsonObj::new()
            .bool("ok", true)
            .str("op", "plan")
            .opt_str("id", Some("a\"b"))
            .opt_str("skip", None)
            .u64("n", 3)
            .f64("score", 9.5)
            .f64("nan", f64::NAN)
            .str_arr("plan", ["m1", "m2"])
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id").unwrap().as_str(), Some("a\"b"));
        assert!(v.get("skip").is_none());
        assert_eq!(v.get("score").unwrap().as_f64(), Some(9.5));
        assert_eq!(v.get("nan"), Some(&Json::Null));
        assert_eq!(
            v.get("plan"),
            Some(&Json::Arr(vec![
                Json::Str("m1".into()),
                Json::Str("m2".into())
            ]))
        );
    }
}
