//! TCP fleet serving: a front end that never dies and never wedges.
//!
//! [`TcpServer`] wraps a `TcpListener` accept loop around the same
//! engine, framing and worker pool the stdio transport uses, with the
//! properties a fleet needs from a daemon it load-balances over:
//!
//! * **Bounded everything.** At most [`TcpConfig::max_connections`]
//!   admitted sessions, one shared bounded queue of
//!   [`TcpConfig::capacity`] jobs, a per-line byte cap, and per-read /
//!   idle timeouts. No hostile or unlucky client grows any buffer or
//!   thread count without bound.
//! * **Shed before admission.** When the gate is saturated (connection
//!   limit hit or queue full) a new connection is never admitted to a
//!   session: a short-lived shed handler reads at most one capped line
//!   under a short deadline, answers `overloaded` **echoing the
//!   request's `id`**, and closes. The client learns its fate
//!   immediately instead of queueing behind a stampede.
//! * **Slow-loris defense.** A connection that never completes a line
//!   within [`TcpConfig::idle_timeout`] is closed
//!   ([`LineReader::next_line_by`] enforces the deadline even against
//!   byte-at-a-time trickling). No complete request is ever dropped:
//!   only idle partial lines die.
//! * **Graceful drain.** A `shutdown` request (on any connection, even
//!   a shed one) flips the engine-wide drain flag: the listener stops
//!   accepting, every reader stops at its next line boundary, the pool
//!   answers everything queued, and only then does [`TcpServer::run`]
//!   return — emitting a traced `serve.shutdown` event with the drain
//!   counts. In-flight requests complete; new connects are refused.
//! * **One terminal response per request.** Jobs carry the connection's
//!   shared writer ([`crate::transport::SharedWriter`]), so a response
//!   outlives its reader thread; the socket closes only after the last
//!   pending response for it is written. `undeliverable_responses`
//!   counts genuine delivery failures (the peer vanished first) and
//!   stays zero under well-behaved clients; the load harness
//!   ([`crate::load`]) asserts the client-observed invariant — no
//!   complete request closed without a terminal response — outside.
//!
//! Every connection event is traced and counted: `serve.conn_accept`,
//! `serve.conn_shed`, `serve.conn_timeout`, `serve.conn_closed`, the
//! `serve.connections` gauge, and the shared queue/phase histograms.

use crate::engine::ServeEngine;
use crate::framing::{FramedLine, LineReader};
use crate::protocol::{parse_request, Op};
use crate::server::{emit_shutdown, is_shutdown_line, ACCEPT_POLL};
use crate::transport::{
    write_response, BatchConfig, ConnTrack, Job, SharedWriter, SupervisorConfig, WorkerPool,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tpp_obs::{obs_event, Level, TraceCtx};

/// TCP transport configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Admitted-connection limit; connections beyond it are shed at
    /// admission (0 = unlimited).
    pub max_connections: usize,
    /// Per-line byte cap (overlong lines get `bad_request`, the
    /// connection survives).
    pub max_line_bytes: usize,
    /// Per-read socket timeout — also the granularity at which blocked
    /// readers notice a drain.
    pub read_timeout: Duration,
    /// A connection must complete a line this often or it is closed
    /// (slow-loris defense).
    pub idle_timeout: Duration,
    /// Shared bounded queue capacity; requests beyond it are shed.
    pub capacity: usize,
    /// Worker threads shared by all connections.
    pub workers: usize,
    /// Stop after accepting this many connections (tests and bounded
    /// smoke runs; `None` = until drained).
    pub accept_limit: Option<u64>,
    /// Worker-pool supervision (respawn budget, wedge detection).
    pub supervisor: SupervisorConfig,
    /// Turn-level plan batching (same-key dequeue-many, shared policy
    /// resolution).
    pub batch: BatchConfig,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_connections: 256,
            max_line_bytes: 256 * 1024,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(10),
            capacity: 64,
            workers: 2,
            accept_limit: None,
            supervisor: SupervisorConfig::default(),
            batch: BatchConfig::default(),
        }
    }
}

/// What a TCP serving run did, for exit summaries and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSummary {
    /// Connections accepted by the listener (admitted + shed).
    pub accepted: u64,
    /// Connections admitted to a full session.
    pub admitted: u64,
    /// Connections shed at admission with an `overloaded` response.
    pub shed: u64,
    /// Connections closed by the idle timeout.
    pub timeouts: u64,
    /// Responses that could not be delivered (the peer was gone).
    pub undeliverable_responses: u64,
    /// The run ended because a drain was requested (vs. accept limit).
    pub drained: bool,
}

/// A bound-but-not-yet-running TCP server; [`TcpServer::run`] consumes
/// it and blocks until drain (or the accept limit).
pub struct TcpServer {
    engine: Arc<ServeEngine>,
    listener: TcpListener,
    addr: SocketAddr,
    config: TcpConfig,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) without
    /// accepting yet, so callers can learn [`local_addr`](Self::local_addr)
    /// before the loop starts.
    pub fn bind(
        engine: Arc<ServeEngine>,
        addr: &str,
        config: TcpConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        engine
            .transport
            .set_limits(config.max_connections as u64, config.capacity.max(1) as u64);
        obs_event!(
            Level::Info,
            "serve.listening",
            tcp = addr.to_string(),
            max_connections = config.max_connections as u64,
            capacity = config.capacity as u64,
        );
        Ok(TcpServer {
            engine,
            listener,
            addr,
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop until a drain completes (or the accept
    /// limit is reached), then answers every in-flight request before
    /// returning.
    pub fn run(self) -> TcpSummary {
        let TcpServer {
            engine,
            listener,
            addr: _,
            config,
        } = self;
        let pool = Arc::new(WorkerPool::spawn_with(
            Arc::clone(&engine),
            config.workers,
            config.capacity.max(1),
            config.supervisor.clone(),
            config.batch.clone(),
        ));
        // Bounds concurrent shed handlers: past it, connections get an
        // unread `overloaded` (null id) so even a shed stampede cannot
        // grow threads without limit.
        let active_sheds = Arc::new(AtomicI64::new(0));
        let shed_bound = (config.max_connections.max(64)) as i64;

        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accepted = 0u64;
        let mut admitted = 0u64;
        loop {
            if engine.transport.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    accepted += 1;
                    engine
                        .transport
                        .conns_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.conn_accept").inc();
                    if engine.transport.saturated() {
                        engine.transport.conns_shed.fetch_add(1, Ordering::Relaxed);
                        tpp_obs::metrics().counter("serve.conn_shed").inc();
                        obs_event!(
                            Level::Info,
                            "serve.conn_shed",
                            peer = peer.to_string(),
                            connections = engine.transport.connections.load(Ordering::Relaxed),
                            queue_depth = engine.transport.queue_depth.load(Ordering::Relaxed),
                        );
                        let engine = Arc::clone(&engine);
                        let config = config.clone();
                        let active = Arc::clone(&active_sheds);
                        let unread = active.fetch_add(1, Ordering::Relaxed) >= shed_bound;
                        std::thread::spawn(move || {
                            shed_connection(&engine, stream, &config, unread);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    } else {
                        admitted += 1;
                        let conns =
                            engine.transport.connections.fetch_add(1, Ordering::Relaxed) + 1;
                        tpp_obs::metrics()
                            .gauge("serve.connections")
                            .set(conns as f64);
                        obs_event!(Level::Debug, "serve.conn_accept", peer = peer.to_string());
                        let engine = Arc::clone(&engine);
                        let pool = Arc::clone(&pool);
                        let config = config.clone();
                        sessions.push(std::thread::spawn(move || {
                            conn_session(&engine, &pool, stream, &config);
                            let conns =
                                engine.transport.connections.fetch_sub(1, Ordering::Relaxed) - 1;
                            tpp_obs::metrics()
                                .gauge("serve.connections")
                                .set(conns as f64);
                        }));
                    }
                    if config.accept_limit.is_some_and(|limit| accepted >= limit) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    // Reap finished sessions so a long-lived daemon's
                    // handle list stays proportional to live sessions.
                    if sessions.len() > 64 {
                        sessions.retain(|h| !h.is_finished());
                    }
                }
                Err(e) => {
                    obs_event!(Level::Warn, "serve.accept_error", error = e.to_string());
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        // Stop accepting: new connects are refused from here on.
        drop(listener);
        for s in sessions {
            let _ = s.join();
        }
        // Answer everything still queued, then let the workers exit.
        match Arc::try_unwrap(pool) {
            Ok(pool) => pool.shutdown(),
            Err(_) => unreachable!("all session threads joined"),
        }
        let t = &engine.transport;
        let summary = TcpSummary {
            accepted,
            admitted,
            shed: t.conns_shed.load(Ordering::Relaxed),
            timeouts: t.conn_timeouts.load(Ordering::Relaxed),
            undeliverable_responses: t.undeliverable_responses.load(Ordering::Relaxed),
            drained: t.draining(),
        };
        emit_shutdown(&engine, "tcp", accepted, admitted);
        summary
    }
}

/// One admitted connection: reads framed lines until EOF, idle timeout,
/// or drain; every complete line gets exactly one terminal response.
fn conn_session(
    engine: &Arc<ServeEngine>,
    pool: &WorkerPool,
    stream: TcpStream,
    config: &TcpConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let track = Arc::new(ConnTrack::default());
    let out: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => {
            obs_event!(Level::Warn, "serve.conn_error", error = e.to_string());
            return;
        }
    };
    let mut reader = LineReader::new(stream, config.max_line_bytes);
    let mut last_line = Instant::now();
    let mut timed_out = false;
    loop {
        if engine.transport.draining() {
            break;
        }
        let deadline = last_line + config.idle_timeout;
        match reader.next_line_by(Some(deadline)) {
            FramedLine::Line(line) => {
                last_line = Instant::now();
                if line.trim().is_empty() {
                    continue;
                }
                track.requests.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    line,
                    trace: TraceCtx::root(),
                    enqueued: Instant::now(),
                    out: Arc::clone(&out),
                    track: Some(Arc::clone(&track)),
                };
                if let Err(job) = pool.try_submit(engine, job) {
                    let _trace = tpp_obs::trace::enter(job.trace);
                    // A saturated daemon must still be drainable, so a
                    // shutdown that would have been shed runs inline.
                    // A *dead-pool* daemon must never accept-and-starve:
                    // probes run inline (so `health` reports
                    // `accepting: false`) and work gets a terminal
                    // `overloaded` instead of queueing into a void.
                    let answer_inline = is_shutdown_line(&job.line)
                        || (engine.transport.workers_dead() && is_probe_line(&job.line));
                    let response = if answer_inline {
                        engine.handle_line(&job.line)
                    } else {
                        engine.overloaded_response(&job.line)
                    };
                    deliver(engine, &out, &track, &response);
                }
            }
            FramedLine::Overlong => {
                last_line = Instant::now();
                track.requests.fetch_add(1, Ordering::Relaxed);
                engine
                    .transport
                    .overlong_lines
                    .fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.overlong_line").inc();
                let response = engine.framing_error_response(&format!(
                    "line exceeds {} byte cap",
                    config.max_line_bytes
                ));
                deliver(engine, &out, &track, &response);
            }
            FramedLine::InvalidUtf8 => {
                last_line = Instant::now();
                track.requests.fetch_add(1, Ordering::Relaxed);
                let response = engine.framing_error_response("line is not valid utf-8");
                deliver(engine, &out, &track, &response);
            }
            FramedLine::TimedOut => {
                // Read timeouts double as the drain poll; only a blown
                // idle deadline is fatal.
                if Instant::now() >= deadline {
                    timed_out = true;
                    engine
                        .transport
                        .conn_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.conn_timeout").inc();
                    obs_event!(
                        Level::Info,
                        "serve.conn_timeout",
                        idle_ms = last_line.elapsed().as_millis() as u64,
                    );
                    break;
                }
            }
            FramedLine::Eof => break,
            FramedLine::Err(e) => {
                obs_event!(Level::Warn, "serve.conn_error", error = e.to_string());
                break;
            }
        }
    }
    // The reader exits here, but queued jobs still hold `out` clones:
    // the socket closes only after their responses are written.
    obs_event!(
        Level::Debug,
        "serve.conn_closed",
        requests = track.requests.load(Ordering::Relaxed),
        responses = track.responses.load(Ordering::Relaxed),
        timed_out = timed_out,
    );
    tpp_obs::metrics().counter("serve.conn_closed").inc();
}

/// `true` when `line` is a read-only probe (`health`, `stats`,
/// `metrics`) — the ops a dead-pool daemon still answers inline so an
/// operator or load balancer can see `accepting: false` instead of an
/// opaque `overloaded`.
fn is_probe_line(line: &str) -> bool {
    matches!(
        parse_request(line),
        Ok(r) if matches!(r.op, Op::Health | Op::Stats | Op::Metrics)
    )
}

/// Writes a reader-side (shed or framing) response and keeps the
/// per-connection and delivery-failure accounting identical to the
/// worker path.
fn deliver(engine: &ServeEngine, out: &SharedWriter, track: &ConnTrack, response: &str) {
    let delivered = write_response(out, response);
    track.responses.fetch_add(1, Ordering::Relaxed);
    if !delivered {
        engine
            .transport
            .undeliverable_responses
            .fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.write_failed").inc();
        obs_event!(Level::Warn, "serve.response_undeliverable", path = "reader");
    }
}

/// Handles a connection refused at admission: reads at most one capped
/// line under a short deadline so the `overloaded` response can echo
/// the request's `id`, answers, and closes. `unread` short-circuits the
/// read entirely when too many shed handlers are already running.
fn shed_connection(
    engine: &Arc<ServeEngine>,
    mut stream: TcpStream,
    config: &TcpConfig,
    unread: bool,
) {
    let trace = TraceCtx::root();
    let _trace = tpp_obs::trace::enter(trace);
    // A fixed, short budget to present the line — independent of the
    // session read timeout, which may be much tighter (poll) or looser.
    let deadline = Instant::now() + Duration::from_millis(250);
    let response = if unread {
        engine.overloaded_response("")
    } else {
        let _ = stream.set_read_timeout(Some(config.read_timeout.min(Duration::from_millis(50))));
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut lines = LineReader::new(reader, config.max_line_bytes);
        match lines.next_line_by(Some(deadline)) {
            FramedLine::Line(line) if is_shutdown_line(&line) => {
                // Even a shed connection can drain the daemon — an
                // operator must not be locked out by saturation.
                engine.handle_line(&line)
            }
            FramedLine::Line(line) if engine.transport.workers_dead() && is_probe_line(&line) => {
                engine.handle_line(&line)
            }
            FramedLine::Line(line) => engine.overloaded_response(&line),
            _ => engine.overloaded_response(""),
        }
    };
    if let Err(e) = writeln!(stream, "{response}").and_then(|()| stream.flush()) {
        engine
            .transport
            .undeliverable_responses
            .fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.write_failed").inc();
        obs_event!(
            Level::Warn,
            "serve.response_undeliverable",
            path = "shed",
            error = e.to_string(),
        );
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use std::io::{BufRead, BufReader, Write};

    fn spawn_server(config: TcpConfig) -> (SocketAddr, std::thread::JoinHandle<TcpSummary>) {
        let engine = Arc::new(ServeEngine::new(ServeConfig::default()));
        let server = TcpServer::bind(engine, "127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();
        (addr, std::thread::spawn(move || server.run()))
    }

    fn request(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        response.trim().to_string()
    }

    #[test]
    fn tcp_round_trip_then_drain() {
        let (addr, handle) = spawn_server(TcpConfig {
            read_timeout: Duration::from_millis(20),
            ..TcpConfig::default()
        });
        let health = request(addr, "{\"op\":\"health\",\"id\":\"h1\"}");
        assert!(health.contains("\"ok\":true"), "health: {health}");
        assert!(health.contains("\"accepting\":true"), "health: {health}");
        let bye = request(addr, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
        assert!(bye.contains("\"draining\":true"), "shutdown ack: {bye}");
        let summary = handle.join().unwrap();
        assert!(summary.drained);
        assert_eq!(summary.undeliverable_responses, 0);
    }
}
