//! Poison-pill quarantine: stop feeding workers a request shape that
//! keeps killing them.
//!
//! `catch_unwind` isolates one panic; the supervisor respawns a worker
//! a panic escapes through. Neither helps when the *same request*
//! comes back and panics the engine again — a hot retry loop against a
//! poison input burns the whole restart budget on one key. Following
//! CARL's observation that constraint-space identity is reusable, the
//! quarantine keys strikes on the same (dataset, constraint signature,
//! policy source) identity the policy cache already computes: K panics
//! on one key quarantine that key for a cooldown TTL, during which
//! identical requests get an immediate terminal `quarantined` response
//! (degraded tier, id echoed) without touching a worker.
//!
//! Strikes are counted per key, reset by the TTL, and the table is
//! bounded: at capacity, the oldest entry is evicted — an attacker
//! cycling keys degrades the quarantine to a no-op, never the daemon
//! to an OOM.

use crate::cache::PolicyKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tpp_obs::{obs_event, Level};

/// Quarantine tuning.
#[derive(Debug, Clone)]
pub struct QuarantineConfig {
    /// Disabled quarantines record nothing and block nothing.
    pub enabled: bool,
    /// Panics on one key before it is quarantined.
    pub strikes: u32,
    /// How long a quarantined key stays blocked; also the idle TTL
    /// after which a key's strike count resets.
    pub cooldown: Duration,
    /// Bound on tracked keys (strike counters + quarantined entries).
    pub max_entries: usize,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            enabled: true,
            strikes: 3,
            cooldown: Duration::from_secs(10),
            max_entries: 1024,
        }
    }
}

#[derive(Debug)]
struct Entry {
    strikes: u32,
    last_strike: Instant,
    /// Set when the key crossed the strike threshold.
    quarantined_at: Option<Instant>,
}

/// Strike table + quarantine set, keyed on [`PolicyKey`].
#[derive(Debug)]
pub struct Quarantine {
    config: QuarantineConfig,
    entries: Mutex<HashMap<PolicyKey, Entry>>,
    added: AtomicU64,
    served: AtomicU64,
}

impl Quarantine {
    /// An empty quarantine table.
    pub fn new(config: QuarantineConfig) -> Self {
        Quarantine {
            config,
            entries: Mutex::new(HashMap::new()),
            added: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PolicyKey, Entry>> {
        // Plain-data critical section: a poisoned lock is still valid.
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a panic attributed to `key`. Returns `true` when this
    /// strike crossed the threshold and quarantined the key.
    pub fn strike(&self, key: &PolicyKey) -> bool {
        if !self.config.enabled {
            return false;
        }
        let now = Instant::now();
        let mut entries = self.lock();
        // Expired strike streaks restart from zero — two panics a day
        // apart are flakiness, not a poison pill.
        let entry = entries.entry(key.clone()).or_insert(Entry {
            strikes: 0,
            last_strike: now,
            quarantined_at: None,
        });
        if entry.quarantined_at.is_none()
            && now.duration_since(entry.last_strike) >= self.config.cooldown
        {
            entry.strikes = 0;
        }
        entry.strikes = entry.strikes.saturating_add(1);
        entry.last_strike = now;
        let crossed = entry.quarantined_at.is_none() && entry.strikes >= self.config.strikes.max(1);
        if crossed {
            entry.quarantined_at = Some(now);
        }
        let strikes = entry.strikes;
        if entries.len() > self.config.max_entries.max(1) {
            evict_oldest(&mut entries);
        }
        drop(entries);
        if crossed {
            self.added.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.quarantine.added").inc();
            self.publish_size();
            obs_event!(
                Level::Warn,
                "serve.quarantined",
                dataset = key.dataset.clone(),
                signature = key.signature,
                strikes = strikes as u64,
                cooldown_ms = self.config.cooldown.as_millis() as u64,
            );
        }
        crossed
    }

    /// Is `key` quarantined right now? Returns the remaining cooldown;
    /// an expired quarantine is removed (strikes start over).
    pub fn active(&self, key: &PolicyKey) -> Option<Duration> {
        if !self.config.enabled {
            return None;
        }
        let mut entries = self.lock();
        let entry = entries.get(key)?;
        let since = entry.quarantined_at?;
        let elapsed = since.elapsed();
        if elapsed >= self.config.cooldown {
            entries.remove(key);
            drop(entries);
            self.publish_size();
            obs_event!(
                Level::Info,
                "serve.quarantine_released",
                dataset = key.dataset.clone(),
                signature = key.signature,
            );
            return None;
        }
        drop(entries);
        self.served.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.quarantine.served").inc();
        Some(self.config.cooldown - elapsed)
    }

    /// Keys currently quarantined (strike-only entries excluded).
    pub fn len(&self) -> usize {
        self.lock()
            .values()
            .filter(|e| e.quarantined_at.is_some())
            .count()
    }

    /// True when no key is quarantined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys quarantined since startup.
    pub fn added(&self) -> u64 {
        self.added.load(Ordering::Relaxed)
    }

    /// Requests answered straight from quarantine.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    fn publish_size(&self) {
        tpp_obs::metrics()
            .gauge("serve.quarantine.size")
            .set(self.len() as f64);
    }
}

fn evict_oldest(entries: &mut HashMap<PolicyKey, Entry>) {
    if let Some(key) = entries
        .iter()
        .min_by_key(|(_, e)| e.last_strike)
        .map(|(k, _)| k.clone())
    {
        entries.remove(&key);
        tpp_obs::metrics().counter("serve.quarantine.evicted").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PolicySource;

    fn key(dataset: &str, signature: u64) -> PolicyKey {
        PolicyKey {
            dataset: dataset.to_owned(),
            signature,
            source: PolicySource::Trained {
                seed: 7,
                episodes: 100,
                start: 0,
            },
        }
    }

    fn quarantine(strikes: u32, cooldown_ms: u64) -> Quarantine {
        Quarantine::new(QuarantineConfig {
            enabled: true,
            strikes,
            cooldown: Duration::from_millis(cooldown_ms),
            max_entries: 8,
        })
    }

    #[test]
    fn quarantines_at_the_strike_threshold() {
        let q = quarantine(3, 60_000);
        let k = key("ds-ct", 42);
        assert!(!q.strike(&k));
        assert!(!q.strike(&k));
        assert!(q.active(&k).is_none());
        assert!(q.strike(&k), "third strike quarantines");
        assert!(q.active(&k).is_some());
        assert_eq!(q.len(), 1);
        assert_eq!(q.added(), 1);
        assert_eq!(q.served(), 1);
    }

    #[test]
    fn different_keys_do_not_share_strikes() {
        let q = quarantine(2, 60_000);
        assert!(!q.strike(&key("ds-ct", 1)));
        assert!(!q.strike(&key("ds-ct", 2)));
        assert!(!q.strike(&key("nyc", 1)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn quarantine_expires_after_the_cooldown() {
        let q = quarantine(1, 20);
        let k = key("ds-ct", 42);
        assert!(q.strike(&k));
        assert!(q.active(&k).is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(q.active(&k).is_none(), "cooldown elapsed");
        assert_eq!(q.len(), 0);
        // The slate is clean: strikes start over.
        assert!(q.strike(&k));
    }

    #[test]
    fn stale_strike_streaks_reset() {
        let q = quarantine(2, 20);
        let k = key("ds-ct", 42);
        assert!(!q.strike(&k));
        std::thread::sleep(Duration::from_millis(30));
        // The earlier strike aged out; this one starts a new streak.
        assert!(!q.strike(&k));
        assert!(q.strike(&k));
    }

    #[test]
    fn the_table_is_bounded() {
        let q = quarantine(1, 60_000);
        for i in 0..64 {
            q.strike(&key("ds-ct", i));
        }
        assert!(q.lock().len() <= 8 + 1);
    }

    #[test]
    fn disabled_quarantine_is_transparent() {
        let q = Quarantine::new(QuarantineConfig {
            enabled: false,
            strikes: 1,
            ..QuarantineConfig::default()
        });
        let k = key("ds-ct", 42);
        assert!(!q.strike(&k));
        assert!(q.active(&k).is_none());
        assert_eq!(q.len(), 0);
    }
}
