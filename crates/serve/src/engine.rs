//! The request engine: dispatch, panic isolation, fallback tiers.
//!
//! [`ServeEngine::handle_line`] is the daemon's whole contract in one
//! function: it takes a raw input line and **always** returns exactly
//! one response line, whatever happens in between. Parse failures
//! become `bad_request` responses; panics anywhere in the planning
//! stack are caught, counted, reported through `tpp-obs`, and answered
//! by a degraded tier; an expired deadline returns the best plan the
//! budget bought, tagged — never an error.
//!
//! Fallback chain for planning requests (first tier that yields a plan
//! serves the response; `tier` names it, `degraded` is `true` whenever
//! the primary tier did not):
//!
//! 1. **policy** — newest valid checkpoint generation, loaded with
//!    exponential backoff on transient store errors (`recommend`).
//!    For `plan` the primary tier is **train**: budgeted SARSA.
//! 2. **eda** — the myopic greedy baseline; no learned state to
//!    corrupt, no training to time out.
//! 3. **partial** — [`tpp_baselines::degraded_partial_plan`]: no RNG,
//!    no reward peeking, lowest-index walk. The floor.

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::{CacheConfig, CachedPolicy, Lookup, PolicyCache, PolicyKey, PolicySource};
use crate::chaos::{ChaosFault, ChaosPlan, WorkerKill};
use crate::datasets::resolve_dataset;
use crate::protocol::{extract_raw_id, parse_request, JsonObj, Op, Request};
use crate::quarantine::{Quarantine, QuarantineConfig};
use crate::retry::{with_backoff_budgeted, BackoffPolicy};
use crate::transport::TransportState;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tpp_core::{
    constraint_signature, plan_violations, score_plan, Budget, PlannerParams, RlPlanner,
};
use tpp_model::{ItemId, Plan, PlanningInstance};
use tpp_obs::{obs_event, Level};
use tpp_rl::QTable;
use tpp_store::StoreError;

/// Engine configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Checkpoint directory the `policy` tier loads from.
    pub checkpoint_dir: Option<PathBuf>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Hard cap on per-request training episodes (`plan` op).
    pub max_episodes: u64,
    /// Retry policy for transient checkpoint-load failures.
    pub backoff: BackoffPolicy,
    /// Policy cache bounds (and whether the cache is on at all).
    pub cache: CacheConfig,
    /// Fault-injection schedule (empty in production).
    pub chaos: ChaosPlan,
    /// Directory for flight-recorder post-mortem dumps. `Some` installs
    /// a [`tpp_obs::FlightRecorder`] as a **global** sink (raising the
    /// global level to at least `Debug`) and dumps its ring here on
    /// panic recovery, shed, deadline overrun and slow requests.
    pub flight_dir: Option<PathBuf>,
    /// Ring capacity (events) of the flight recorder.
    pub flight_capacity: usize,
    /// Requests slower than this (wall-clock) trigger a flight dump.
    pub slow_request_ms: Option<u64>,
    /// Circuit breaker over the checkpoint-store load path.
    pub breaker: BreakerConfig,
    /// Poison-pill quarantine over repeatedly-panicking request keys.
    pub quarantine: QuarantineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            checkpoint_dir: None,
            default_deadline_ms: None,
            max_episodes: 2_000,
            backoff: BackoffPolicy::serving_default(),
            cache: CacheConfig::default(),
            chaos: ChaosPlan::none(),
            flight_dir: None,
            flight_capacity: 256,
            slow_request_ms: None,
            breaker: BreakerConfig::default(),
            quarantine: QuarantineConfig::default(),
        }
    }
}

/// Monotonic counters exposed by `stats` and the exit summary.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Requests received (including malformed ones).
    pub requests: AtomicU64,
    /// Terminal responses produced.
    pub answered: AtomicU64,
    /// Panics caught and isolated.
    pub panics: AtomicU64,
    /// Responses served by a non-primary tier or after budget expiry.
    pub degraded: AtomicU64,
    /// Lines that failed to parse as requests.
    pub bad_requests: AtomicU64,
    /// Requests shed by the bounded queue (counted by the server).
    pub overloaded: AtomicU64,
    /// Responses served per tier.
    pub tier_policy: AtomicU64,
    /// Responses served by budgeted fresh training.
    pub tier_train: AtomicU64,
    /// Responses served by the EDA baseline tier.
    pub tier_eda: AtomicU64,
    /// Responses served by the last-resort partial planner.
    pub tier_partial: AtomicU64,
}

/// A resolved dataset plus its precomputed constraint signature (the
/// signature is pure in the instance, so computing it once at resolve
/// time keeps it off the per-request path).
struct DatasetEntry {
    instance: PlanningInstance,
    params: PlannerParams,
    signature: u64,
}

/// The long-lived request engine (shared across worker threads).
pub struct ServeEngine {
    config: ServeConfig,
    /// Datasets are immutable once generated; cache them warm.
    datasets: Mutex<HashMap<String, Arc<DatasetEntry>>>,
    /// The policy cache + single-flight table.
    pub cache: PolicyCache,
    /// Counters for `stats` responses and the exit summary.
    pub counters: EngineCounters,
    /// Transport readiness, drain flag and connection accounting —
    /// updated by whichever transport fronts this engine, reported by
    /// the `health` / `stats` ops.
    pub transport: TransportState,
    /// Circuit breaker shared by every checkpoint load.
    pub breaker: CircuitBreaker,
    /// Poison-pill quarantine keyed on the cache's policy identity.
    pub quarantine: Quarantine,
    started: Instant,
    ordinal: AtomicU64,
    /// Ring buffer of recent events, dumped on incidents (see
    /// [`ServeConfig::flight_dir`]).
    flight: Option<Arc<tpp_obs::FlightRecorder>>,
    flight_seq: AtomicU64,
}

/// What one fallback tier produced.
struct TierResult {
    plan: Plan,
    tier: &'static str,
    retries: u32,
    episodes: Option<u64>,
    /// Served from (or coalesced onto) a cached policy.
    cached: bool,
    /// Checkpoint generation the policy came from (`policy` tier only).
    generation: Option<u64>,
}

/// One member of a worker batch (see [`ServeEngine::handle_batch`]):
/// the raw request line plus the trace context minted at ingestion.
pub struct BatchItem<'a> {
    /// The raw request line.
    pub line: &'a str,
    /// Trace context minted at ingestion.
    pub trace: tpp_obs::TraceCtx,
}

/// The policy resolution a whole batch shares: one cache lookup, one
/// checkpoint deserialize, one training run if cold — whatever the
/// primary tier would have done per request.
struct SharedResolution {
    policy: Arc<CachedPolicy>,
    tier: &'static str,
    retries: u32,
    episodes: Option<u64>,
    cached: bool,
    generation: Option<u64>,
}

/// A batch member's view of the shared resolution.
struct BatchShare<'a> {
    resolution: &'a Result<SharedResolution, String>,
    size: usize,
    /// The member that led the resolution reports its true cache
    /// outcome; every other member was answered from the shared `Arc`.
    leader: bool,
}

impl ServeEngine {
    /// Creates an engine with the given configuration. When
    /// [`ServeConfig::flight_dir`] is set this installs the flight
    /// recorder as a process-wide sink (the caller owns sink teardown
    /// via [`tpp_obs::clear_sinks`] at session end).
    pub fn new(config: ServeConfig) -> Self {
        let cache = PolicyCache::new(config.cache.clone());
        let flight = config.flight_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            let recorder = Arc::new(tpp_obs::FlightRecorder::new(
                config.flight_capacity.max(1),
                Level::Debug,
            ));
            tpp_obs::add_sink(recorder.clone() as Arc<dyn tpp_obs::Sink>);
            recorder
        });
        let breaker = CircuitBreaker::new(config.breaker.clone());
        let quarantine = Quarantine::new(config.quarantine.clone());
        // Publish the self-healing gauges at construction so the
        // Prometheus exposition carries the series before any incident
        // moves them.
        let m = tpp_obs::metrics();
        m.gauge("serve.breaker.state").set(0.0);
        m.gauge("serve.quarantine.size").set(0.0);
        m.gauge("serve.workers_alive").set(0.0);
        ServeEngine {
            config,
            datasets: Mutex::new(HashMap::new()),
            cache,
            counters: EngineCounters::default(),
            transport: TransportState::default(),
            breaker,
            quarantine,
            started: Instant::now(),
            ordinal: AtomicU64::new(0),
            flight,
            flight_seq: AtomicU64::new(0),
        }
    }

    /// Writes the flight-recorder ring to a post-mortem JSONL file in
    /// the configured directory. `reason` ∈ {panic, shed, deadline,
    /// slow, worker, wedged, pool}; the filename carries a sequence
    /// number, the reason and the current trace id so incidents map
    /// back to requests. `pub(crate)` so the worker-pool supervisor
    /// can dump on worker deaths.
    pub(crate) fn dump_flight(&self, reason: &str) {
        let (Some(recorder), Some(dir)) = (&self.flight, &self.config.flight_dir) else {
            return;
        };
        let seq = self.flight_seq.fetch_add(1, Ordering::Relaxed);
        let trace = tpp_obs::trace::current()
            .map(|c| tpp_obs::trace::hex(c.trace_id))
            .unwrap_or_else(|| "untraced".to_owned());
        let path = dir.join(format!("flight-{seq:05}-{reason}-{trace}.jsonl"));
        match recorder.dump_to_file(&path) {
            Ok(()) => {
                tpp_obs::metrics()
                    .counter(&format!("serve.flight.{reason}"))
                    .inc();
                obs_event!(
                    Level::Warn,
                    "serve.flight_dumped",
                    reason = reason,
                    path = path.display().to_string(),
                );
            }
            Err(e) => {
                obs_event!(
                    Level::Warn,
                    "serve.flight_dump_failed",
                    reason = reason,
                    error = e.to_string(),
                );
            }
        }
    }

    /// Handles one raw input line; always returns one response line.
    /// This function itself must never panic — the outer
    /// `catch_unwind` covers every tier, including the floor.
    ///
    /// Every request runs under a trace context: the server's workers
    /// install the context minted at ingestion before calling this, and
    /// direct callers (tests, one-shot tools) get a fresh root here, so
    /// all events the request causes — including those inside
    /// `catch_unwind` recovery — share one `trace_id`.
    pub fn handle_line(&self, line: &str) -> String {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed) + 1;
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.requests").inc();
        let ctx = tpp_obs::trace::current().unwrap_or_else(tpp_obs::TraceCtx::root);
        let _trace = tpp_obs::trace::enter(ctx);
        let started = Instant::now();

        let (op_name, response) = match parse_request(line) {
            Err(msg) => {
                self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.bad_request").inc();
                // Even unparsable requests stay correlatable when the
                // raw line carried a recoverable string id.
                let resp = JsonObj::new()
                    .bool("ok", false)
                    .nullable_str("id", extract_raw_id(line).as_deref())
                    .str("error", &format!("bad_request: {msg}"))
                    .finish();
                ("bad_request", resp)
            }
            Ok(req) => {
                let op_name = req.op.as_str();
                let _span = tpp_obs::span(Level::Debug, "serve.request")
                    .with("op", op_name)
                    .with("ordinal", ordinal);
                let faults = self.config.chaos.take(ordinal);
                let caught = catch_unwind(AssertUnwindSafe(|| self.dispatch(&req, &faults)));
                let resp = match caught {
                    Ok(resp) => resp,
                    Err(payload) if payload.is::<WorkerKill>() => {
                        // The one panic allowed past per-request
                        // isolation: a chaos worker-kill. Strike the
                        // request's quarantine key (this shape just
                        // killed a worker) and resume the unwind so
                        // the death reaches the supervisor — the
                        // worker's rescue guard still answers the
                        // client.
                        self.strike_quarantine(&req);
                        tpp_obs::metrics().counter("serve.chaos_kill").inc();
                        obs_event!(Level::Error, "serve.chaos_kill", op = op_name);
                        std::panic::resume_unwind(payload);
                    }
                    Err(payload) => {
                        self.strike_quarantine(&req);
                        self.answer_after_panic(&req, &payload)
                    }
                };
                (op_name, resp)
            }
        };

        let elapsed = started.elapsed();
        tpp_obs::metrics()
            .histogram("serve.latency_ms")
            .record(elapsed.as_millis() as u64);
        tpp_obs::metrics()
            .histogram(&format!("serve.op.{op_name}_us"))
            .record_duration(elapsed);
        if self
            .config
            .slow_request_ms
            .is_some_and(|ms| elapsed.as_millis() as u64 > ms)
        {
            obs_event!(
                Level::Warn,
                "serve.slow_request",
                op = op_name,
                elapsed_ms = elapsed.as_millis() as u64,
            );
            self.dump_flight("slow");
        }
        self.counters.answered.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// Handles a whole same-key batch formed at dequeue: per-member
    /// bookkeeping mirrors [`handle_line`](Self::handle_line) exactly —
    /// each member takes its own ordinal (chaos faults stay keyed to
    /// arrival order), runs under its own trace context, gets its own
    /// `plan`-phase rollout timing and latency metrics, and is panic-
    /// isolated individually — but the policy is resolved **once** and
    /// every member is answered from the shared `Arc<CachedPolicy>`.
    /// `deliver` is called with `(member index, response)` as each
    /// response is produced, so early members reach their connections
    /// while later ones serialize.
    pub fn handle_batch(&self, members: &[BatchItem<'_>], deliver: &mut dyn FnMut(usize, String)) {
        if members.is_empty() {
            return;
        }
        if members.len() == 1 {
            let _trace = tpp_obs::trace::enter(members[0].trace);
            let response = self.handle_line(members[0].line);
            deliver(0, response);
            return;
        }
        struct Member {
            parsed: Result<Request, String>,
            faults: Vec<ChaosFault>,
            ordinal: u64,
            started: Instant,
        }
        // Intake in arrival order, before any work, so chaos schedules
        // and the request counter see the same sequence a sequential
        // worker would have produced.
        let intake: Vec<Member> = members
            .iter()
            .map(|m| {
                let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed) + 1;
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.requests").inc();
                Member {
                    parsed: parse_request(m.line),
                    faults: self.config.chaos.take(ordinal),
                    ordinal,
                    started: Instant::now(),
                }
            })
            .collect();

        let n = members.len() as u64;
        let t = &self.transport;
        t.batches_formed.fetch_add(1, Ordering::Relaxed);
        t.batch_members.fetch_add(n, Ordering::Relaxed);
        t.amortized_loads.fetch_add(n - 1, Ordering::Relaxed);
        let m = tpp_obs::metrics();
        m.counter("serve.batch.formed").inc();
        m.counter("serve.batch.amortized_loads").add(n - 1);
        m.histogram("serve.batch.size").record(n);
        obs_event!(Level::Info, "serve.batch", size = n);

        // One shared policy resolution, led by the first member that
        // parses as a planning request, under that member's trace. The
        // resolution budget is the most generous member deadline — the
        // value serves everyone, so it may use the longest runway any
        // member paid for; each member's own deadline still gates its
        // rollout and serialization below.
        let leader = intake
            .iter()
            .position(|m| matches!(&m.parsed, Ok(r) if matches!(r.op, Op::Plan | Op::Recommend)));
        let resolution: Result<SharedResolution, String> = match leader {
            None => Err("no planning request in batch".to_owned()),
            Some(li) => {
                let mut unlimited = false;
                let mut max_ms = 0u64;
                for member in &intake {
                    if let Ok(req) = &member.parsed {
                        match req.deadline_ms.or(self.config.default_deadline_ms) {
                            None => unlimited = true,
                            Some(ms) => max_ms = max_ms.max(ms),
                        }
                    }
                }
                let budget = if unlimited {
                    Budget::unlimited()
                } else {
                    Budget::unlimited().with_deadline(Duration::from_millis(max_ms))
                };
                let flaky_load = intake[li].faults.contains(&ChaosFault::FlakyLoad);
                let _trace = tpp_obs::trace::enter(members[li].trace);
                match &intake[li].parsed {
                    Ok(req) => self.resolve_for_batch(req, &budget, flaky_load),
                    Err(_) => unreachable!("leader position requires Ok"),
                }
            }
        };

        for (i, (item, member)) in members.iter().zip(&intake).enumerate() {
            let _trace = tpp_obs::trace::enter(item.trace);
            let (op_name, response) = match &member.parsed {
                Err(msg) => {
                    self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.bad_request").inc();
                    let resp = JsonObj::new()
                        .bool("ok", false)
                        .nullable_str("id", extract_raw_id(item.line).as_deref())
                        .str("error", &format!("bad_request: {msg}"))
                        .finish();
                    ("bad_request", resp)
                }
                Ok(req) => {
                    let op_name = req.op.as_str();
                    let _span = tpp_obs::span(Level::Debug, "serve.request")
                        .with("op", op_name)
                        .with("ordinal", member.ordinal)
                        .with("batched", true);
                    let share = BatchShare {
                        resolution: &resolution,
                        size: members.len(),
                        leader: Some(i) == leader,
                    };
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        self.dispatch_batched(req, &member.faults, &share)
                    }));
                    let resp = match caught {
                        Ok(resp) => resp,
                        Err(payload) if payload.is::<WorkerKill>() => {
                            // Same contract as `handle_line`: let the
                            // kill escape to the supervisor — the batch
                            // rescue guard answers this member and
                            // every later one during the unwind.
                            self.strike_quarantine(req);
                            tpp_obs::metrics().counter("serve.chaos_kill").inc();
                            obs_event!(Level::Error, "serve.chaos_kill", op = op_name);
                            std::panic::resume_unwind(payload);
                        }
                        Err(payload) => {
                            self.strike_quarantine(req);
                            self.answer_after_panic(req, &payload)
                        }
                    };
                    (op_name, resp)
                }
            };
            let elapsed = member.started.elapsed();
            tpp_obs::metrics()
                .histogram("serve.latency_ms")
                .record(elapsed.as_millis() as u64);
            tpp_obs::metrics()
                .histogram(&format!("serve.op.{op_name}_us"))
                .record_duration(elapsed);
            if self
                .config
                .slow_request_ms
                .is_some_and(|ms| elapsed.as_millis() as u64 > ms)
            {
                obs_event!(
                    Level::Warn,
                    "serve.slow_request",
                    op = op_name,
                    elapsed_ms = elapsed.as_millis() as u64,
                );
                self.dump_flight("slow");
            }
            self.counters.answered.fetch_add(1, Ordering::Relaxed);
            deliver(i, response);
        }
    }

    /// Resolves the one policy a batch shares, with the same quarantine
    /// gate and panic accounting the per-request path applies. An error
    /// here sends every member down its own degradation chain.
    fn resolve_for_batch(
        &self,
        req: &Request,
        budget: &Budget,
        flaky_load: bool,
    ) -> Result<SharedResolution, String> {
        let name = req
            .dataset
            .as_deref()
            .ok_or_else(|| "missing \"dataset\"".to_owned())?;
        let ds = self.dataset(name)?;
        let start = self.resolve_start(&ds.instance, req.start.as_deref())?;
        if let Some(remaining) = self
            .quarantine_key(req)
            .and_then(|key| self.quarantine.active(&key))
        {
            // Every member's own quarantine gate will serve the
            // degraded chain; skip feeding the poison to a resolution.
            return Err(format!(
                "quarantined: cooling down for {}ms",
                remaining.as_millis()
            ));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| match req.op {
            Op::Plan => {
                let mut params = ds.params.clone().with_start(start);
                params.episodes = req
                    .episodes
                    .unwrap_or(params.episodes as u64)
                    .min(self.config.max_episodes) as usize;
                self.resolve_trained(req, name, &ds, &params, start, budget)
            }
            Op::Recommend => self.resolve_checkpoint(name, &ds, budget, flaky_load),
            _ => Err("not a planning op".to_owned()),
        }));
        match outcome {
            Ok(resolved) => resolved,
            Err(payload) => {
                self.strike_quarantine(req);
                self.note_panic(&payload);
                Err(format!("resolution panicked ({})", panic_message(&payload)))
            }
        }
    }

    /// Batched dispatch: chaos faults apply per member exactly as in
    /// [`dispatch`](Self::dispatch); planning ops answer from the
    /// shared resolution; anything else (unreachable through batch
    /// formation, which only keys planning ops) serves normally.
    fn dispatch_batched(&self, req: &Request, faults: &[ChaosFault], share: &BatchShare) -> String {
        if faults.contains(&ChaosFault::KillWorker) {
            std::panic::panic_any(WorkerKill);
        }
        if faults.contains(&ChaosFault::Panic) {
            panic!("chaos: injected panic while handling request");
        }
        if faults.contains(&ChaosFault::CorruptCheckpoint) {
            self.corrupt_newest_checkpoint();
        }
        match req.op {
            Op::Plan | Op::Recommend => self.answer_planning_shared(req, faults, Some(share)),
            _ => self.dispatch(req, &[]),
        }
    }

    /// Builds the `overloaded` shed response for a raw line (called by
    /// the server when the bounded queue is full; counts as answered).
    pub fn overloaded_response(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        self.counters.answered.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.requests").inc();
        tpp_obs::metrics().counter("serve.overloaded").inc();
        obs_event!(Level::Warn, "serve.shed", reason = "queue_full");
        self.dump_flight("shed");
        // Shed requests must stay correlatable: echo the id whenever
        // the raw line is a JSON object carrying one — even if the
        // request would not have parsed — and emit an explicit
        // `"id": null` otherwise so clients can rely on the key.
        let id = extract_raw_id(line);
        JsonObj::new()
            .bool("ok", false)
            .nullable_str("id", id.as_deref())
            .str("error", "overloaded")
            .finish()
    }

    /// Builds the terminal `bad_request` response for a line the
    /// framing layer rejected before it could become a request —
    /// over-cap length or invalid UTF-8. The raw bytes are gone (or
    /// unparsable by construction), so the id is an explicit `null`.
    /// The session stays alive; only this line is answered and dropped.
    pub fn framing_error_response(&self, why: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        self.counters.answered.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.requests").inc();
        tpp_obs::metrics().counter("serve.bad_request").inc();
        obs_event!(Level::Warn, "serve.framing_rejected", reason = why);
        JsonObj::new()
            .bool("ok", false)
            .nullable_str("id", None)
            .str("error", &format!("bad_request: {why}"))
            .finish()
    }

    fn dispatch(&self, req: &Request, faults: &[ChaosFault]) -> String {
        if faults.contains(&ChaosFault::KillWorker) {
            // Raised as a typed marker so `handle_line` can recognize
            // it and deliberately let it escape (killing the worker).
            std::panic::panic_any(WorkerKill);
        }
        if faults.contains(&ChaosFault::Panic) {
            panic!("chaos: injected panic while handling request");
        }
        if faults.contains(&ChaosFault::CorruptCheckpoint) {
            self.corrupt_newest_checkpoint();
        }
        // Stalls burn the request's own budget, so they are applied
        // after it starts (inside answer_planning).
        match req.op {
            Op::Health => self.health_response(req),
            Op::Stats => self.stats_response(req),
            Op::Metrics => self.metrics_response(req),
            Op::Shutdown => self.shutdown_response(req),
            Op::Plan | Op::Recommend => self.answer_planning(req, faults),
        }
    }

    /// `shutdown` op: flips the drain flag (idempotently) and
    /// acknowledges. The transport notices the flag at its next poll
    /// tick: the listener stops accepting, readers stop reading, and
    /// everything already in flight is answered before exit.
    fn shutdown_response(&self, req: &Request) -> String {
        let initiated = self.transport.begin_drain();
        obs_event!(
            Level::Info,
            "serve.shutdown_requested",
            initiated = initiated
        );
        JsonObj::new()
            .bool("ok", true)
            .opt_str("id", req.id.as_deref())
            .str("op", "shutdown")
            .bool("draining", true)
            .bool("initiated", initiated)
            .finish()
    }

    /// The planning path: primary tier, then the degradation chain.
    fn answer_planning(&self, req: &Request, faults: &[ChaosFault]) -> String {
        self.answer_planning_shared(req, faults, None)
    }

    /// The planning path, optionally answering from a batch's shared
    /// policy resolution instead of resolving per request. With
    /// `shared: None` this is byte-identical to the unbatched path.
    fn answer_planning_shared(
        &self,
        req: &Request,
        faults: &[ChaosFault],
        shared: Option<&BatchShare>,
    ) -> String {
        let Some(name) = req.dataset.as_deref() else {
            return self.error_response(req, "missing \"dataset\"");
        };
        let ds = match self.dataset(name) {
            Ok(ds) => ds,
            Err(msg) => return self.error_response(req, &msg),
        };
        let (instance, params) = (&ds.instance, &ds.params);
        let start = match self.resolve_start(instance, req.start.as_deref()) {
            Ok(s) => s,
            Err(msg) => return self.error_response(req, &msg),
        };

        // The budget starts before any chaos stall, so a stalled handler
        // visibly eats its own deadline — exactly what a production
        // stall would do.
        let deadline_ms = req.deadline_ms.or(self.config.default_deadline_ms);
        let budget = match deadline_ms {
            Some(ms) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        for f in faults {
            match f {
                ChaosFault::Stall(d) => {
                    obs_event!(
                        Level::Warn,
                        "serve.chaos_stall",
                        millis = d.as_millis() as u64
                    );
                    std::thread::sleep(*d);
                }
                // A wedge is a stall long enough to trip the
                // supervisor's progress budget: the worker sleeps here
                // while the supervisor retires and replaces it. The
                // request still answers when the sleep ends.
                ChaosFault::Wedge(d) => {
                    obs_event!(
                        Level::Warn,
                        "serve.chaos_wedge",
                        millis = d.as_millis() as u64
                    );
                    std::thread::sleep(*d);
                }
                _ => {}
            }
        }
        let flaky_load = faults.contains(&ChaosFault::FlakyLoad);

        let mut fell_back_because: Vec<String> = Vec::new();
        let primary: &'static str = match req.op {
            Op::Plan => "train",
            _ => "policy",
        };
        // Poison-pill gate: a key that has repeatedly panicked the
        // engine skips the primary tier entirely for its cooldown —
        // the EDA/partial chain answers immediately instead of feeding
        // the poison to another worker.
        let quarantined_for = self
            .quarantine_key(req)
            .and_then(|key| self.quarantine.active(&key));
        if let Some(remaining) = quarantined_for {
            fell_back_because.push(format!(
                "quarantined: key panicked repeatedly; cooling down for {}ms",
                remaining.as_millis()
            ));
            obs_event!(
                Level::Warn,
                "serve.quarantine_hit",
                dataset = name,
                remaining_ms = remaining.as_millis() as u64,
            );
        }
        let result = if quarantined_for.is_some() {
            self.try_eda_tier(req, instance, params, start, &mut fell_back_because)
                .or_else(|| self.try_partial_tier(instance, params, start, &mut fell_back_because))
        } else {
            match shared {
                Some(share) => {
                    self.try_shared_primary(req, &ds, start, share, &mut fell_back_because)
                }
                None => self.try_primary_tier(
                    req,
                    name,
                    &ds,
                    start,
                    &budget,
                    flaky_load,
                    &mut fell_back_because,
                ),
            }
            .or_else(|| self.try_eda_tier(req, instance, params, start, &mut fell_back_because))
            .or_else(|| self.try_partial_tier(instance, params, start, &mut fell_back_because))
        };

        let Some(result) = result else {
            // Even the floor panicked — answer with an error, stay alive.
            return self
                .error_response(req, &format!("internal: {}", fell_back_because.join("; ")));
        };

        if shared.is_some() {
            // Shared resolution ran under the *batch* budget, so this
            // member's own deadline was never consulted by compute —
            // latch it here so `degraded`/`deadline_expired` (and the
            // overrun flight dump below) stay faithful per member.
            budget.poll();
        }
        let degraded = result.tier != primary || budget.expired();
        if degraded {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.degraded").inc();
        }
        self.tier_counter(result.tier)
            .fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics()
            .counter(&format!("serve.tier.{}", result.tier))
            .inc();
        obs_event!(
            Level::Info,
            "serve.answered",
            op = req.op.as_str(),
            dataset = name,
            tier = result.tier,
            degraded = degraded,
            cached = result.cached,
        );

        let response = phase_timed("serialize", || {
            let violations = plan_violations(instance, &result.plan);
            let mut obj = JsonObj::new()
                .bool("ok", true)
                .opt_str("id", req.id.as_deref())
                .str("op", req.op.as_str())
                .str("dataset", name)
                .str("tier", result.tier)
                .bool("degraded", degraded)
                .bool("cached", result.cached)
                .bool("deadline_expired", budget.expired())
                .u64("retries", result.retries as u64);
            if quarantined_for.is_some() {
                obj = obj.bool("quarantined", true);
            }
            if let Some(share) = shared {
                obj = obj
                    .bool("batched", true)
                    .u64("batch_size", share.size as u64);
            }
            if let Some(episodes) = result.episodes {
                obj = obj.u64("episodes", episodes);
            }
            if let Some(generation) = result.generation {
                obj = obj.u64("generation", generation);
            }
            obj = obj
                .str_arr(
                    "plan",
                    result
                        .plan
                        .items()
                        .iter()
                        .map(|&id| instance.catalog.item(id).code.as_str()),
                )
                .f64("score", score_plan(instance, &result.plan))
                .u64("violations", violations.len() as u64);
            if !fell_back_because.is_empty() {
                obj = obj.str_arr("fallbacks", fell_back_because.iter().map(String::as_str));
            }
            obj.finish()
        });
        if budget.expired() {
            self.dump_flight("deadline");
        }
        response
    }

    /// Tier 1: budgeted training (`plan`) or checkpoint policy with
    /// budget-capped retry (`recommend`), both fronted by the policy
    /// cache. `None` → fall down the chain.
    #[allow(clippy::too_many_arguments)]
    fn try_primary_tier(
        &self,
        req: &Request,
        name: &str,
        ds: &DatasetEntry,
        start: ItemId,
        budget: &Budget,
        flaky_load: bool,
        reasons: &mut Vec<String>,
    ) -> Option<TierResult> {
        let outcome = catch_unwind(AssertUnwindSafe(|| match req.op {
            Op::Plan => self.plan_tier(req, name, ds, start, budget),
            Op::Recommend => self.recommend_tier(req, name, ds, start, budget, flaky_load),
            // Health/stats never reach the planning path.
            _ => Err("not a planning op".to_owned()),
        }));
        if outcome.is_err() {
            // The primary tier panicked on this key: one quarantine
            // strike (K of these and the key is served degraded
            // without touching the planning stack at all).
            self.strike_quarantine(req);
        }
        self.settle_tier("primary", outcome, reasons)
    }

    /// Answers one batch member from the batch's shared resolution:
    /// its own rollout (own `plan`-phase timing, own panic isolation),
    /// no second cache lookup or training run. A failed resolution
    /// sends the member down the degradation chain with the reason.
    fn try_shared_primary(
        &self,
        req: &Request,
        ds: &DatasetEntry,
        start: ItemId,
        share: &BatchShare,
        reasons: &mut Vec<String>,
    ) -> Option<TierResult> {
        match share.resolution {
            Err(e) => {
                obs_event!(
                    Level::Warn,
                    "serve.tier_failed",
                    tier = "primary",
                    error = e
                );
                reasons.push(format!("primary: {e}"));
                None
            }
            Ok(resolved) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let instance = &ds.instance;
                    // Params mirror the unbatched tier exactly (batch
                    // keys pin op/seed/episodes/start, so every member
                    // computes the same ones) — the rollout is
                    // bit-identical to a sequential serve.
                    let mut params = ds.params.clone().with_start(start);
                    if matches!(req.op, Op::Plan) {
                        params.episodes =
                            req.episodes
                                .unwrap_or(params.episodes as u64)
                                .min(self.config.max_episodes) as usize;
                    }
                    let plan = recommend_timed(&resolved.policy.q, instance, &params, start);
                    Ok(TierResult {
                        plan,
                        tier: resolved.tier,
                        retries: resolved.retries,
                        episodes: resolved.episodes,
                        cached: if share.leader { resolved.cached } else { true },
                        generation: resolved.generation,
                    })
                }));
                if outcome.is_err() {
                    self.strike_quarantine(req);
                }
                self.settle_tier("primary", outcome, reasons)
            }
        }
    }

    /// Budgeted SARSA training behind the cache: a burst of identical
    /// `plan` requests (same dataset, seed, episodes, start) costs one
    /// training run — the leader trains, followers coalesce, later
    /// requests hit the cached `Arc<CachedPolicy>`.
    fn plan_tier(
        &self,
        req: &Request,
        name: &str,
        ds: &DatasetEntry,
        start: ItemId,
        budget: &Budget,
    ) -> Result<TierResult, String> {
        let instance = &ds.instance;
        let mut params = ds.params.clone().with_start(start);
        params.episodes = req
            .episodes
            .unwrap_or(params.episodes as u64)
            .min(self.config.max_episodes) as usize;
        let resolved = self.resolve_trained(req, name, ds, &params, start, budget)?;
        let plan = recommend_timed(&resolved.policy.q, instance, &params, start);
        Ok(TierResult {
            plan,
            tier: resolved.tier,
            retries: resolved.retries,
            episodes: resolved.episodes,
            cached: resolved.cached,
            generation: resolved.generation,
        })
    }

    /// Resolves the trained policy for a `plan` request — cache hit,
    /// coalesce onto an in-flight leader, lead a training run, or train
    /// solo — without performing the rollout.
    fn resolve_trained(
        &self,
        req: &Request,
        name: &str,
        ds: &DatasetEntry,
        params: &PlannerParams,
        start: ItemId,
        budget: &Budget,
    ) -> Result<SharedResolution, String> {
        let instance = &ds.instance;
        if !self.cache.is_enabled() {
            let (q, episodes) = phase_timed("train", || {
                Self::train_policy(instance, params, req.seed, budget)
            })?;
            return Ok(SharedResolution {
                policy: Arc::new(CachedPolicy {
                    q,
                    episodes: Some(episodes),
                    generation: None,
                }),
                tier: "train",
                retries: 0,
                episodes: Some(episodes),
                cached: false,
                generation: None,
            });
        }

        let key = PolicyKey {
            dataset: name.to_owned(),
            signature: ds.signature,
            source: PolicySource::Trained {
                seed: req.seed,
                episodes: params.episodes as u64,
                start: start.0 as usize,
            },
        };
        let mut span = tpp_obs::span(Level::Debug, "serve.cache").with("op", "plan");
        match phase_timed("cache_lookup", || {
            self.cache.lookup(key, follower_wait(budget))
        }) {
            Lookup::Hit(policy) | Lookup::Coalesced(policy) => {
                span.record("outcome", "shared");
                let episodes = policy.episodes;
                Ok(SharedResolution {
                    policy,
                    tier: "train",
                    retries: 0,
                    episodes,
                    cached: true,
                    generation: None,
                })
            }
            Lookup::Lead(guard) => {
                span.record("outcome", "lead");
                // The guard's Drop fails the flight if training panics,
                // so followers wake and fall back instead of wedging.
                let (q, episodes) = match phase_timed("train", || {
                    Self::train_policy(instance, params, req.seed, budget)
                }) {
                    Ok(trained) => trained,
                    Err(e) => {
                        guard.fail(&e);
                        return Err(e);
                    }
                };
                let value = Arc::new(CachedPolicy {
                    q,
                    episodes: Some(episodes),
                    generation: None,
                });
                if budget.expired() {
                    // A partial policy answers this request (and any
                    // coalesced followers, who share its deadline fate)
                    // but is not representative — keep it out of the
                    // cache so the next cold request trains fully.
                    guard.fulfill_uncached(Arc::clone(&value));
                } else {
                    guard.fulfill(Arc::clone(&value));
                }
                Ok(SharedResolution {
                    policy: value,
                    tier: "train",
                    retries: 0,
                    episodes: Some(episodes),
                    cached: false,
                    generation: None,
                })
            }
            Lookup::LeaderFailed(reason) => {
                span.record("outcome", "leader_failed");
                obs_event!(Level::Warn, "serve.cache.leader_failed", reason = &reason);
                // Compute solo and uncached — the leader's failure may
                // have been its own deadline, not a property of the key.
                let (q, episodes) = phase_timed("train", || {
                    Self::train_policy(instance, params, req.seed, budget)
                })?;
                Ok(SharedResolution {
                    policy: Arc::new(CachedPolicy {
                        q,
                        episodes: Some(episodes),
                        generation: None,
                    }),
                    tier: "train",
                    retries: 0,
                    episodes: Some(episodes),
                    cached: false,
                    generation: None,
                })
            }
        }
    }

    /// Checkpoint policy behind the cache. The key carries the newest
    /// generation's stamp token, so rotation *and* in-place rewrites
    /// change the key — a corrupt-then-fallback load is cached under
    /// the new token, never served as a stale hit of the old one.
    fn recommend_tier(
        &self,
        _req: &Request,
        name: &str,
        ds: &DatasetEntry,
        start: ItemId,
        budget: &Budget,
        flaky_load: bool,
    ) -> Result<TierResult, String> {
        let instance = &ds.instance;
        let params = ds.params.clone().with_start(start);
        let resolved = self.resolve_checkpoint(name, ds, budget, flaky_load)?;
        let plan = recommend_timed(&resolved.policy.q, instance, &params, start);
        Ok(TierResult {
            plan,
            tier: resolved.tier,
            retries: resolved.retries,
            episodes: resolved.episodes,
            cached: resolved.cached,
            generation: resolved.generation,
        })
    }

    /// Resolves the checkpoint policy for a `recommend` request — cache
    /// hit, coalesce, lead a load, or load solo — without the rollout.
    fn resolve_checkpoint(
        &self,
        name: &str,
        ds: &DatasetEntry,
        budget: &Budget,
        flaky_load: bool,
    ) -> Result<SharedResolution, String> {
        let instance = &ds.instance;
        let dir = self
            .config
            .checkpoint_dir
            .as_ref()
            .ok_or_else(|| "no checkpoint directory configured".to_owned())?;
        let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, 1);
        let load = || {
            if flaky_load {
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "chaos: flaky checkpoint load",
                )));
            }
            set.load_latest()
        };
        let load_with_retry = |retries_out: &mut u32| -> Result<(u64, QTable), String> {
            // Circuit breaker: while open, skip the store entirely and
            // degrade now — the whole deadline goes to tiers that can
            // answer, instead of rediscovering per-request that the
            // store is down.
            if let Admission::FastFail { retry_in } = self.breaker.admit() {
                return Err(format!(
                    "breaker open: checkpoint store cooling down for {}ms",
                    retry_in.as_millis()
                ));
            }
            let (loaded, retries) = with_backoff_budgeted(&self.config.backoff, Some(budget), load);
            *retries_out = retries;
            // Transient final errors feed the breaker; successes and
            // permanent errors both mean the store answered, which
            // closes it.
            match &loaded {
                Err(e) if e.is_retryable() => self.breaker.record_failure(),
                _ => self.breaker.record_success(),
            }
            let (generation, ckpt) = loaded
                .map_err(|e| format!("checkpoint load failed: {e}"))?
                .ok_or_else(|| format!("no checkpoints in {}", dir.display()))?;
            if ckpt.q.n_states() != instance.catalog.len() {
                return Err(format!(
                    "checkpoint has {} states, dataset has {} items",
                    ckpt.q.n_states(),
                    instance.catalog.len()
                ));
            }
            obs_event!(
                Level::Debug,
                "serve.policy_loaded",
                generation = generation,
                episode = ckpt.episode,
            );
            Ok((generation, ckpt.q))
        };

        if !self.cache.is_enabled() {
            let mut retries = 0;
            let (generation, q) = phase_timed("checkpoint_load", || load_with_retry(&mut retries))?;
            return Ok(SharedResolution {
                policy: Arc::new(CachedPolicy {
                    q,
                    episodes: None,
                    generation: Some(generation),
                }),
                tier: "policy",
                retries,
                episodes: None,
                cached: false,
                generation: Some(generation),
            });
        }

        // Cheap probe (read_dir + stat, no payload I/O): the stamp
        // token keys the cache entry, and any token change reaps the
        // previous generation's entries.
        let stamp = set
            .observe_newest()
            .map_err(|e| format!("checkpoint observe failed: {e}"))?
            .ok_or_else(|| format!("no checkpoints in {}", dir.display()))?;
        let token = stamp.token();
        self.cache.invalidate_checkpoints(name, token);
        let key = PolicyKey {
            dataset: name.to_owned(),
            signature: ds.signature,
            source: PolicySource::Checkpoint { token },
        };
        let mut span = tpp_obs::span(Level::Debug, "serve.cache").with("op", "recommend");
        match phase_timed("cache_lookup", || {
            self.cache.lookup(key, follower_wait(budget))
        }) {
            Lookup::Hit(policy) | Lookup::Coalesced(policy) => {
                span.record("outcome", "shared");
                let generation = policy.generation;
                Ok(SharedResolution {
                    policy,
                    tier: "policy",
                    retries: 0,
                    episodes: None,
                    cached: true,
                    generation,
                })
            }
            Lookup::Lead(guard) => {
                span.record("outcome", "lead");
                let mut retries = 0;
                let (generation, q) =
                    match phase_timed("checkpoint_load", || load_with_retry(&mut retries)) {
                        Ok(loaded) => loaded,
                        Err(e) => {
                            guard.fail(&e);
                            return Err(e);
                        }
                    };
                let value = Arc::new(CachedPolicy {
                    q,
                    episodes: None,
                    generation: Some(generation),
                });
                guard.fulfill(Arc::clone(&value));
                Ok(SharedResolution {
                    policy: value,
                    tier: "policy",
                    retries,
                    episodes: None,
                    cached: false,
                    generation: Some(generation),
                })
            }
            Lookup::LeaderFailed(reason) => {
                span.record("outcome", "leader_failed");
                obs_event!(Level::Warn, "serve.cache.leader_failed", reason = &reason);
                let mut retries = 0;
                let (generation, q) =
                    phase_timed("checkpoint_load", || load_with_retry(&mut retries))?;
                Ok(SharedResolution {
                    policy: Arc::new(CachedPolicy {
                        q,
                        episodes: None,
                        generation: Some(generation),
                    }),
                    tier: "policy",
                    retries,
                    episodes: None,
                    cached: false,
                    generation: Some(generation),
                })
            }
        }
    }

    /// Runs budgeted SARSA and returns the raw Q-table plus episodes
    /// actually completed.
    fn train_policy(
        instance: &PlanningInstance,
        params: &PlannerParams,
        seed: u64,
        budget: &Budget,
    ) -> Result<(QTable, u64), String> {
        let (policy, stats) =
            RlPlanner::learn_budgeted(instance, params, seed, None, 0, budget, |_| Ok(()))
                .map_err(|e| format!("training failed: {e}"))?;
        Ok((policy.q, stats.episodes() as u64))
    }

    /// Tier 2: the myopic EDA baseline.
    fn try_eda_tier(
        &self,
        req: &Request,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
        reasons: &mut Vec<String>,
    ) -> Option<TierResult> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let plan = tpp_baselines::eda_plan(
                instance,
                &params.clone().with_start(start),
                start,
                req.seed,
            );
            Ok(TierResult {
                plan,
                tier: "eda",
                retries: 0,
                episodes: None,
                cached: false,
                generation: None,
            })
        }));
        self.settle_tier("eda", outcome, reasons)
    }

    /// Tier 3 (the floor): deterministic partial plan.
    fn try_partial_tier(
        &self,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
        reasons: &mut Vec<String>,
    ) -> Option<TierResult> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let plan = tpp_baselines::degraded_partial_plan(
                instance,
                &params.clone().with_start(start),
                start,
                instance.catalog.len(),
            );
            Ok(TierResult {
                plan,
                tier: "partial",
                retries: 0,
                episodes: None,
                cached: false,
                generation: None,
            })
        }));
        self.settle_tier("partial", outcome, reasons)
    }

    /// Unwraps one tier's `catch_unwind` outcome, recording why it did
    /// not serve (panic or error) so the response can list it.
    fn settle_tier(
        &self,
        tier: &str,
        outcome: Result<Result<TierResult, String>, Box<dyn std::any::Any + Send>>,
        reasons: &mut Vec<String>,
    ) -> Option<TierResult> {
        match outcome {
            Ok(Ok(result)) => Some(result),
            Ok(Err(msg)) => {
                obs_event!(Level::Warn, "serve.tier_failed", tier = tier, error = &msg);
                reasons.push(format!("{tier}: {msg}"));
                None
            }
            Err(payload) => {
                self.note_panic(&payload);
                reasons.push(format!("{tier}: panicked ({})", panic_message(&payload)));
                None
            }
        }
    }

    /// Counts and reports one isolated panic, then dumps the flight
    /// recorder — the ring holds the events leading up to the panic,
    /// which is exactly the post-mortem a crash log cannot give.
    fn note_panic(&self, payload: &Box<dyn std::any::Any + Send>) {
        self.counters.panics.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.panic").inc();
        obs_event!(
            Level::Error,
            "serve.panic_isolated",
            message = panic_message(payload),
        );
        self.dump_flight("panic");
    }

    /// Fallback after the whole dispatch panicked (e.g. an injected
    /// chaos panic before tier selection): run the degradation chain
    /// directly. This path must not be able to panic out.
    fn answer_after_panic(&self, req: &Request, payload: &Box<dyn std::any::Any + Send>) -> String {
        self.note_panic(payload);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if !matches!(req.op, Op::Plan | Op::Recommend) {
                // Health/stats panicked (only chaos can do this) — the
                // retry is fault-free because chaos fires once.
                return self.dispatch(req, &[]);
            }
            let Some(name) = req.dataset.as_deref() else {
                return self.error_response(req, "missing \"dataset\"");
            };
            let Ok(ds) = self.dataset(name) else {
                return self.error_response(req, &format!("unknown dataset {name:?}"));
            };
            let (instance, params) = (&ds.instance, &ds.params);
            let Ok(start) = self.resolve_start(instance, req.start.as_deref()) else {
                return self.error_response(req, "unknown start code");
            };
            let mut reasons = vec![format!("primary: panicked ({})", panic_message(payload))];
            let result = self
                .try_eda_tier(req, instance, params, start, &mut reasons)
                .or_else(|| self.try_partial_tier(instance, params, start, &mut reasons));
            match result {
                Some(result) => {
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.degraded").inc();
                    self.tier_counter(result.tier)
                        .fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics()
                        .counter(&format!("serve.tier.{}", result.tier))
                        .inc();
                    let violations = plan_violations(instance, &result.plan);
                    JsonObj::new()
                        .bool("ok", true)
                        .nullable_str("id", req.id.as_deref())
                        .str("op", req.op.as_str())
                        .str("dataset", name)
                        .str("tier", result.tier)
                        .bool("degraded", true)
                        .bool("cached", false)
                        .bool("deadline_expired", false)
                        .u64("retries", 0)
                        .str_arr(
                            "plan",
                            result
                                .plan
                                .items()
                                .iter()
                                .map(|&id| instance.catalog.item(id).code.as_str()),
                        )
                        .f64("score", score_plan(instance, &result.plan))
                        .u64("violations", violations.len() as u64)
                        .str_arr("fallbacks", reasons.iter().map(String::as_str))
                        .finish()
                }
                None => self.error_response(req, "internal: all tiers failed"),
            }
        }));
        caught.unwrap_or_else(|_| {
            JsonObj::new()
                .bool("ok", false)
                .nullable_str("id", req.id.as_deref())
                .str("error", "internal: panic recovery failed")
                .finish()
        })
    }

    /// The quarantine identity of a planning request: the same
    /// (dataset, constraint signature, source) triple the policy cache
    /// keys on — except `recommend` keys are generation-agnostic
    /// (token 0), because a request shape that kills workers does so
    /// regardless of which checkpoint generation is newest.
    fn quarantine_key(&self, req: &Request) -> Option<PolicyKey> {
        if !matches!(req.op, Op::Plan | Op::Recommend) {
            return None;
        }
        let name = req.dataset.as_deref()?;
        let ds = self.dataset(name).ok()?;
        let start = self
            .resolve_start(&ds.instance, req.start.as_deref())
            .ok()?;
        let source = match req.op {
            Op::Plan => PolicySource::Trained {
                seed: req.seed,
                episodes: req
                    .episodes
                    .unwrap_or(ds.params.episodes as u64)
                    .min(self.config.max_episodes),
                start: start.0 as usize,
            },
            _ => PolicySource::Checkpoint { token: 0 },
        };
        Some(PolicyKey {
            dataset: name.to_owned(),
            signature: ds.signature,
            source,
        })
    }

    /// Records one panic strike against the request's quarantine key
    /// (no-op for non-planning ops or unresolvable requests).
    fn strike_quarantine(&self, req: &Request) {
        if let Some(key) = self.quarantine_key(req) {
            self.quarantine.strike(&key);
        }
    }

    /// The terminal response a worker's rescue guard (or the pool's
    /// post-mortem drain) writes for a job whose handler died. Plain
    /// code only — this runs during an unwind.
    pub(crate) fn worker_crash_response(&self, line: &str) -> String {
        self.counters.answered.fetch_add(1, Ordering::Relaxed);
        JsonObj::new()
            .bool("ok", false)
            .nullable_str("id", extract_raw_id(line).as_deref())
            .str(
                "error",
                "internal: worker crashed while handling this request",
            )
            .bool("rescued", true)
            .finish()
    }

    fn tier_counter(&self, tier: &str) -> &AtomicU64 {
        match tier {
            "policy" => &self.counters.tier_policy,
            "train" => &self.counters.tier_train,
            "eda" => &self.counters.tier_eda,
            _ => &self.counters.tier_partial,
        }
    }

    /// `health` carries readiness semantics for load-balancer probes:
    /// `accepting` is `false` while draining or while the admission
    /// gate is saturated (connection limit reached or queue full), so
    /// a balancer can stop routing here *before* its next request is
    /// shed.
    fn health_response(&self, req: &Request) -> String {
        let t = &self.transport;
        JsonObj::new()
            .bool("ok", true)
            .opt_str("id", req.id.as_deref())
            .str("op", "health")
            .bool("accepting", t.accepting())
            .bool("draining", t.draining())
            .u64(
                "connections",
                t.connections.load(Ordering::Relaxed).max(0) as u64,
            )
            .u64(
                "queue_depth",
                t.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            )
            .u64(
                "workers_alive",
                t.workers_alive.load(Ordering::SeqCst).max(0) as u64,
            )
            .str("breaker", self.breaker.state_name())
            .u64("quarantine_size", self.quarantine.len() as u64)
            .u64("uptime_ms", self.started.elapsed().as_millis() as u64)
            .u64("requests", self.counters.requests.load(Ordering::Relaxed))
            .u64(
                "panics_isolated",
                self.counters.panics.load(Ordering::Relaxed),
            )
            .finish()
    }

    fn stats_response(&self, req: &Request) -> String {
        let c = &self.counters;
        let cc = &self.cache.counters;
        let (cache_entries, cache_bytes) = self.cache.usage();
        let m = tpp_obs::metrics();
        JsonObj::new()
            .bool("ok", true)
            .opt_str("id", req.id.as_deref())
            .str("op", "stats")
            .u64("requests", c.requests.load(Ordering::Relaxed))
            .u64("answered", c.answered.load(Ordering::Relaxed))
            .u64("bad_requests", c.bad_requests.load(Ordering::Relaxed))
            .u64("overloaded", c.overloaded.load(Ordering::Relaxed))
            .u64("panics_isolated", c.panics.load(Ordering::Relaxed))
            .u64("degraded", c.degraded.load(Ordering::Relaxed))
            .u64("tier_policy", c.tier_policy.load(Ordering::Relaxed))
            .u64("tier_train", c.tier_train.load(Ordering::Relaxed))
            .u64("tier_eda", c.tier_eda.load(Ordering::Relaxed))
            .u64("tier_partial", c.tier_partial.load(Ordering::Relaxed))
            .bool("cache_enabled", self.cache.is_enabled())
            .u64("cache_hits", cc.hits.load(Ordering::Relaxed))
            .u64("cache_misses", cc.misses.load(Ordering::Relaxed))
            .u64("cache_coalesced", cc.coalesced.load(Ordering::Relaxed))
            .u64("cache_evictions", cc.evictions.load(Ordering::Relaxed))
            .u64(
                "cache_invalidations",
                cc.invalidations.load(Ordering::Relaxed),
            )
            .u64("cache_entries", cache_entries as u64)
            .u64("cache_bytes", cache_bytes as u64)
            .bool("accepting", self.transport.accepting())
            .bool("draining", self.transport.draining())
            .u64(
                "connections",
                self.transport.connections.load(Ordering::Relaxed).max(0) as u64,
            )
            .u64(
                "conns_accepted",
                self.transport.conns_accepted.load(Ordering::Relaxed),
            )
            .u64(
                "conns_shed",
                self.transport.conns_shed.load(Ordering::Relaxed),
            )
            .u64(
                "conn_timeouts",
                self.transport.conn_timeouts.load(Ordering::Relaxed),
            )
            .u64(
                "overlong_lines",
                self.transport.overlong_lines.load(Ordering::Relaxed),
            )
            .u64(
                "undeliverable_responses",
                self.transport
                    .undeliverable_responses
                    .load(Ordering::Relaxed),
            )
            .u64(
                "workers_configured",
                self.transport.workers_configured.load(Ordering::Relaxed),
            )
            .u64(
                "workers_alive",
                self.transport.workers_alive.load(Ordering::SeqCst).max(0) as u64,
            )
            .u64(
                "worker_restarts",
                self.transport.worker_restarts.load(Ordering::Relaxed),
            )
            .u64(
                "worker_deaths",
                self.transport.worker_deaths.load(Ordering::Relaxed),
            )
            .u64(
                "worker_wedged",
                self.transport.worker_wedged.load(Ordering::Relaxed),
            )
            .u64(
                "worker_rescued",
                self.transport.worker_rescued.load(Ordering::Relaxed),
            )
            .u64("lock_recovered", m.counter("serve.lock_recovered").get())
            .u64(
                "batches_formed",
                self.transport.batches_formed.load(Ordering::Relaxed),
            )
            .u64(
                "batch_members",
                self.transport.batch_members.load(Ordering::Relaxed),
            )
            .u64(
                "amortized_loads",
                self.transport.amortized_loads.load(Ordering::Relaxed),
            )
            .str("breaker_state", self.breaker.state_name())
            .u64("breaker_opens", self.breaker.opens())
            .u64("breaker_closes", self.breaker.closes())
            .u64("breaker_fast_fails", self.breaker.fast_fails())
            .u64("breaker_probes", self.breaker.probes())
            .u64("quarantine_size", self.quarantine.len() as u64)
            .u64("quarantine_added", self.quarantine.added())
            .u64("quarantine_served", self.quarantine.served())
            .u64(
                "queue_depth",
                m.gauge("serve.queue_depth").get().max(0.0) as u64,
            )
            .raw(
                "queue_wait_us",
                &histogram_summary_json(&m.histogram("serve.queue_wait_us").summary()),
            )
            .raw("latency_us", &per_op_latency_json())
            .finish()
    }

    /// `metrics` op: the full registry, both as Prometheus-style text
    /// (for scrapers and humans) and as the JSON snapshot with raw
    /// histogram buckets (for `Metrics::from_snapshot` round-trips).
    fn metrics_response(&self, req: &Request) -> String {
        let m = tpp_obs::metrics();
        JsonObj::new()
            .bool("ok", true)
            .opt_str("id", req.id.as_deref())
            .str("op", "metrics")
            .str("prometheus", &m.render_prometheus())
            .raw("registry", &m.render_json())
            .finish()
    }

    fn error_response(&self, req: &Request, msg: &str) -> String {
        JsonObj::new()
            .bool("ok", false)
            .opt_str("id", req.id.as_deref())
            .str("op", req.op.as_str())
            .str("error", msg)
            .finish()
    }

    /// Dataset lookup with a warm cache (generation is deterministic,
    /// so cached and fresh instances are identical). A poisoned lock is
    /// recovered, not propagated: the map's entries are immutable
    /// `Arc`s, so an unwinding holder cannot leave them torn, and
    /// propagating would fail every later request for every dataset.
    fn dataset(&self, name: &str) -> Result<Arc<DatasetEntry>, String> {
        let lock_datasets = || {
            self.datasets.lock().unwrap_or_else(|poisoned| {
                crate::transport::count_lock_recovered("datasets");
                poisoned.into_inner()
            })
        };
        if let Some(ds) = lock_datasets().get(name) {
            return Ok(Arc::clone(ds));
        }
        let (instance, params) = resolve_dataset(name)?;
        let signature = constraint_signature(&instance);
        let ds = Arc::new(DatasetEntry {
            instance,
            params,
            signature,
        });
        lock_datasets().insert(name.to_owned(), Arc::clone(&ds));
        Ok(ds)
    }

    fn resolve_start(
        &self,
        instance: &PlanningInstance,
        code: Option<&str>,
    ) -> Result<ItemId, String> {
        match code {
            Some(code) => instance
                .catalog
                .by_code(code)
                .map(|i| i.id)
                .ok_or_else(|| format!("unknown item code {code:?}")),
            None => instance
                .default_start
                .ok_or_else(|| "dataset has no default start; pass \"start\"".to_owned()),
        }
    }

    /// Chaos: flip the payload bytes of the newest checkpoint
    /// generation so its checksum fails on the next load.
    fn corrupt_newest_checkpoint(&self) {
        let Some(dir) = &self.config.checkpoint_dir else {
            return;
        };
        let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, 1);
        let Ok(gens) = set.generations() else { return };
        let Some(&newest) = gens.last() else { return };
        let path = set.generation_path(newest);
        if let Ok(mut bytes) = std::fs::read(&path) {
            // Keep the magic intact; flip everything after it so the
            // loader sees a checksum mismatch, not a foreign file.
            for b in bytes.iter_mut().skip(8) {
                *b ^= 0xFF;
            }
            let _ = std::fs::write(&path, &bytes);
            obs_event!(
                Level::Warn,
                "serve.chaos_corrupt",
                path = path.display().to_string(),
                generation = newest,
            );
        }
    }
}

/// How long a follower blocks on an in-flight leader before giving up
/// and computing solo: the request's own remaining deadline when it has
/// one (waiting longer than that is pointless — the answer would arrive
/// expired), else a generous default that still cannot wedge forever.
fn follower_wait(budget: &Budget) -> Duration {
    budget.remaining_time().unwrap_or(Duration::from_secs(30))
}

/// Times `f` into the fixed-purpose `serve.phase.<name>_us` histogram.
/// Phase names: `queue_wait` lives in its own histogram (measured by
/// the server), the rest are `cache_lookup`, `checkpoint_load`,
/// `train`, `plan`, `serialize`.
fn phase_timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let out = f();
    tpp_obs::metrics()
        .histogram(&format!("serve.phase.{name}_us"))
        .record_duration(started.elapsed());
    out
}

/// Greedy rollout from a Q-table, timed as the `plan` phase.
fn recommend_timed(
    q: &QTable,
    instance: &PlanningInstance,
    params: &PlannerParams,
    start: ItemId,
) -> Plan {
    phase_timed("plan", || {
        RlPlanner::recommend_with_q(q, instance, params, start)
    })
}

/// Renders a histogram summary as a flat JSON object (embedded via
/// [`JsonObj::raw`] in `stats` responses).
fn histogram_summary_json(s: &tpp_obs::HistogramSummary) -> String {
    JsonObj::new()
        .u64("count", s.count)
        .f64("mean", s.mean)
        .u64("p50", s.p50)
        .u64("p95", s.p95)
        .u64("p99", s.p99)
        .u64("p999", s.p999)
        .u64("max", s.max)
        .finish()
}

/// Per-op latency summaries from the `serve.op.<op>_us` histograms,
/// including only ops that have actually served at least one request.
fn per_op_latency_json() -> String {
    let m = tpp_obs::metrics();
    let mut obj = JsonObj::new();
    for op in [
        "plan",
        "recommend",
        "health",
        "stats",
        "metrics",
        "shutdown",
        "bad_request",
    ] {
        let s = m.histogram(&format!("serve.op.{op}_us")).summary();
        if s.count > 0 {
            obj = obj.raw(op, &histogram_summary_json(&s));
        }
    }
    obj.finish()
}

/// Human-readable text of a panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_obs::json::{parse, Json};

    fn engine() -> ServeEngine {
        ServeEngine::new(ServeConfig::default())
    }

    fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
        v.get(k).unwrap_or_else(|| panic!("missing field {k:?}"))
    }

    #[test]
    fn health_and_stats_answer() {
        let e = engine();
        let h = parse(&e.handle_line(r#"{"op":"health","id":"h1"}"#)).unwrap();
        assert_eq!(get(&h, "ok"), &Json::Bool(true));
        assert_eq!(get(&h, "id").as_str(), Some("h1"));
        let s = parse(&e.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(get(&s, "requests").as_f64(), Some(2.0));
    }

    #[test]
    fn malformed_lines_get_bad_request() {
        let e = engine();
        let r = parse(&e.handle_line("this is not json")).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(false));
        assert!(get(&r, "error")
            .as_str()
            .unwrap()
            .starts_with("bad_request"));
        assert_eq!(e.counters.bad_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_dataset_is_a_terminal_error_response() {
        let e = engine();
        let r = parse(&e.handle_line(r#"{"op":"plan","dataset":"atlantis"}"#)).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(false));
        assert!(get(&r, "error").as_str().unwrap().contains("atlantis"));
    }

    #[test]
    fn plan_trains_and_answers_with_train_tier() {
        let e = engine();
        let r = parse(
            &e.handle_line(r#"{"op":"plan","dataset":"ds-ct","episodes":40,"seed":1,"id":"p1"}"#),
        )
        .unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(&r, "tier").as_str(), Some("train"));
        assert_eq!(get(&r, "degraded"), &Json::Bool(false));
        assert_eq!(get(&r, "episodes").as_f64(), Some(40.0));
        assert!(matches!(get(&r, "plan"), Json::Arr(items) if !items.is_empty()));
    }

    /// Golden equivalence: a batch of identical plan requests must be
    /// answered bit-identically (plan, score, tier, cached, episodes)
    /// to the same requests served one at a time — batching may only
    /// amortize work, never change answers.
    #[test]
    fn batched_responses_are_bit_identical_to_sequential() {
        let line = r#"{"op":"plan","dataset":"ds-ct","episodes":40,"seed":3}"#;
        let seq_engine = engine();
        let sequential: Vec<Json> = (0..3)
            .map(|_| parse(&seq_engine.handle_line(line)).unwrap())
            .collect();

        let batch_engine = engine();
        let items: Vec<BatchItem> = (0..3)
            .map(|_| BatchItem {
                line,
                trace: tpp_obs::TraceCtx::root(),
            })
            .collect();
        let mut batched: Vec<Option<Json>> = vec![None, None, None];
        batch_engine.handle_batch(&items, &mut |i, resp| {
            batched[i] = Some(parse(&resp).unwrap());
        });

        for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
            let bat = bat
                .as_ref()
                .unwrap_or_else(|| panic!("member {i} answered"));
            assert_eq!(get(bat, "batched"), &Json::Bool(true));
            assert_eq!(get(bat, "batch_size").as_f64(), Some(3.0));
            for field in ["ok", "tier", "degraded", "cached", "episodes", "violations"] {
                assert_eq!(get(seq, field), get(bat, field), "member {i} field {field}");
            }
            assert_eq!(
                get(seq, "plan"),
                get(bat, "plan"),
                "member {i} plan must be bit-identical"
            );
            let s = get(seq, "score").as_f64().unwrap();
            let b = get(bat, "score").as_f64().unwrap();
            assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "member {i} score must be bit-identical"
            );
        }
        assert_eq!(
            batch_engine
                .transport
                .batches_formed
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            batch_engine
                .transport
                .amortized_loads
                .load(Ordering::Relaxed),
            2,
            "three members share one resolution"
        );
    }

    #[test]
    fn recommend_without_checkpoints_degrades_to_eda() {
        let e = engine();
        let r = parse(&e.handle_line(r#"{"op":"recommend","dataset":"ds-ct"}"#)).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(&r, "tier").as_str(), Some("eda"));
        assert_eq!(get(&r, "degraded"), &Json::Bool(true));
        assert_eq!(e.counters.tier_eda.load(Ordering::Relaxed), 1);
        assert_eq!(e.counters.degraded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expired_deadline_still_returns_a_plan() {
        let e = engine();
        let r = parse(
            &e.handle_line(r#"{"op":"plan","dataset":"ds-ct","deadline_ms":0,"episodes":500}"#),
        )
        .unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(&r, "deadline_expired"), &Json::Bool(true));
        assert_eq!(get(&r, "degraded"), &Json::Bool(true));
        assert_eq!(get(&r, "episodes").as_f64(), Some(0.0));
        assert!(matches!(get(&r, "plan"), Json::Arr(items) if !items.is_empty()));
    }

    #[test]
    fn injected_panic_is_isolated_and_answered_degraded() {
        let config = ServeConfig {
            chaos: "panic@1".parse().unwrap(),
            ..ServeConfig::default()
        };
        let e = ServeEngine::new(config);
        let r = parse(&e.handle_line(r#"{"op":"recommend","dataset":"ds-ct","id":"x"}"#)).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(&r, "id").as_str(), Some("x"));
        assert_eq!(get(&r, "degraded"), &Json::Bool(true));
        assert_eq!(e.counters.panics.load(Ordering::Relaxed), 1);
        // The next request sees a clean world.
        let r2 = parse(&e.handle_line(r#"{"op":"health"}"#)).unwrap();
        assert_eq!(get(&r2, "ok"), &Json::Bool(true));
    }

    #[test]
    fn trip_datasets_serve_too() {
        let e = engine();
        let r = parse(&e.handle_line(r#"{"op":"plan","dataset":"nyc","episodes":30}"#)).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(&r, "violations").as_f64(), Some(0.0));
    }

    #[test]
    fn metrics_op_exposes_prometheus_text_and_registry_snapshot() {
        let e = engine();
        // Serve something first so the registry has serve.* series.
        e.handle_line(r#"{"op":"plan","dataset":"ds-ct","episodes":10}"#);
        let r = parse(&e.handle_line(r#"{"op":"metrics","id":"m1"}"#)).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true));
        assert_eq!(get(&r, "id").as_str(), Some("m1"));
        let prom = get(&r, "prometheus").as_str().unwrap();
        assert!(prom.contains("serve_requests"), "{prom}");
        assert!(prom.contains("serve_phase_plan_us_bucket"), "{prom}");
        // The embedded registry snapshot is machine-readable and
        // reconstructible.
        let registry = get(&r, "registry");
        assert!(registry.get("histograms").is_some());
        let rendered = {
            let mut s = String::new();
            // Round-trip through from_snapshot to prove the embedded
            // snapshot is complete.
            let m = tpp_obs::Metrics::from_snapshot(registry).unwrap();
            s.push_str(&m.render_json());
            s
        };
        assert!(rendered.contains("serve.requests"));
    }

    #[test]
    fn stats_carries_queue_and_latency_summaries() {
        let e = engine();
        e.handle_line(r#"{"op":"health"}"#);
        let s = parse(&e.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert!(get(&s, "queue_depth").as_f64().is_some());
        assert!(get(&s, "queue_wait_us").get("count").is_some());
        // health ran at least once in this process, so its per-op
        // summary is present with all percentile fields.
        let health = get(&s, "latency_us").get("health").cloned().unwrap();
        for field in ["count", "p50", "p95", "p99", "p999", "max"] {
            assert!(health.get(field).is_some(), "missing {field}");
        }
    }

    #[test]
    fn panics_and_deadline_overruns_dump_the_flight_recorder() {
        let dir = std::env::temp_dir().join(format!("tpp-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            chaos: "panic@1".parse().unwrap(),
            flight_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let e = ServeEngine::new(config);
        e.handle_line(r#"{"op":"recommend","dataset":"ds-ct"}"#);
        e.handle_line(r#"{"op":"plan","dataset":"ds-ct","deadline_ms":0,"episodes":500}"#);
        tpp_obs::clear_sinks();
        let mut dumps: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        dumps.sort();
        assert!(
            dumps.iter().any(|f| f.contains("-panic-")),
            "no panic dump in {dumps:?}"
        );
        assert!(
            dumps.iter().any(|f| f.contains("-deadline-")),
            "no deadline dump in {dumps:?}"
        );
        // Every dumped line is valid JSONL.
        for f in &dumps {
            let text = std::fs::read_to_string(dir.join(f)).unwrap();
            for line in text.lines() {
                parse(line).unwrap_or_else(|e| panic!("bad line in {f}: {e}"));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
