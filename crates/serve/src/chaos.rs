//! Deterministic fault injection for the serving path.
//!
//! PR 2's `FaultFs` proves the *storage* layer survives crashes by
//! killing I/O at operation N. This module extends the same philosophy
//! to the *compute* path: a [`ChaosPlan`] maps request ordinals
//! (1-based, in arrival order) to faults the engine triggers while
//! handling that request — a panic inside the handler, a stall that
//! eats the request's deadline, or corruption of the newest checkpoint
//! generation. Because faults key on ordinals, a chaos run is exactly
//! reproducible, which is what lets the integration suite assert
//! "N requests in, N responses out, correct tier on each" instead of
//! "it usually survives".
//!
//! Plans parse from a compact spec (used by `tpp serve --chaos`):
//!
//! ```text
//! panic@3,stall@5:200,corrupt@7,flaky@9,kill@11,wedge@13:500,flaky@20:4
//! ```
//!
//! meaning: panic while handling request 3, stall 200 ms inside
//! request 5, corrupt the newest checkpoint before serving request 7,
//! fail every checkpoint-load attempt of request 9 with a transient
//! I/O error, kill the worker handling request 11 (a panic that
//! escapes per-request isolation — supervision territory), wedge the
//! worker handling request 13 for 500 ms, and make requests 20–23 a
//! consecutive flaky burst (what trips the store circuit breaker).

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Mutex;
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFault {
    /// Panic inside the request handler (must be isolated, not fatal).
    Panic,
    /// Sleep this long inside the handler (exercises deadline budgets
    /// and queue back-pressure).
    Stall(Duration),
    /// Flip bytes in the newest checkpoint generation on disk before
    /// handling (exercises the corruption-fallback chain).
    CorruptCheckpoint,
    /// Every checkpoint-load attempt during this request fails with a
    /// transient I/O error (exercises the budget-capped retry loop:
    /// the request must still fall back and answer inside its
    /// deadline instead of sleeping it away).
    FlakyLoad,
    /// Panic with a marker the engine deliberately re-raises *past*
    /// its `catch_unwind`, killing the worker thread that was handling
    /// the request (exercises supervision: respawn, job rescue, and
    /// the quarantine strike on the request's key).
    KillWorker,
    /// Sleep this long inside the handler *without* consuming the
    /// request budget's attention — long enough to trip the
    /// supervisor's wedge detector (the worker is retired and
    /// replaced; the wedged request still answers when the sleep
    /// ends).
    Wedge(Duration),
}

/// The panic payload [`ChaosFault::KillWorker`] raises. The engine's
/// `catch_unwind` recognizes this exact type and resumes the unwind
/// instead of answering degraded — it is the only panic allowed to
/// escape per-request isolation, existing precisely to prove the
/// supervision layer above it.
#[derive(Debug)]
pub(crate) struct WorkerKill;

/// A schedule of faults keyed by request ordinal.
///
/// An ordinal may carry several faults (`stall@9:50,flaky@9` stalls
/// request 9 *and* makes its checkpoint loads flaky) — that compound is
/// how the suite proves the retry loop respects what's left of a
/// deadline after a stall already ate part of it. Faults are consumed:
/// each fires at most once, so a retry of the same request ordinal
/// (there are none today) would see a clean world.
#[derive(Debug, Default)]
pub struct ChaosPlan {
    faults: Mutex<HashMap<u64, Vec<ChaosFault>>>,
}

impl ChaosPlan {
    /// An empty plan (no faults — the production configuration).
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Schedules `fault` for request `ordinal` (1-based), in addition
    /// to any faults already scheduled there.
    pub fn schedule(&self, ordinal: u64, fault: ChaosFault) {
        self.faults
            .lock()
            .expect("chaos plan lock poisoned")
            .entry(ordinal)
            .or_default()
            .push(fault);
    }

    /// Removes and returns all faults for `ordinal` (empty when clean).
    pub fn take(&self, ordinal: u64) -> Vec<ChaosFault> {
        self.faults
            .lock()
            .expect("chaos plan lock poisoned")
            .remove(&ordinal)
            .unwrap_or_default()
    }

    /// Number of faults still pending.
    pub fn pending(&self) -> usize {
        self.faults
            .lock()
            .expect("chaos plan lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

impl FromStr for ChaosPlan {
    type Err = String;

    /// Parses `panic@N`, `stall@N:MS`, `corrupt@N`, `flaky@N`,
    /// `flaky@N:K`, `kill@N`, `wedge@N:MS`, comma-separated.
    fn from_str(spec: &str) -> Result<Self, String> {
        let plan = ChaosPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, at) = part
                .split_once('@')
                .ok_or_else(|| format!("chaos fault {part:?} needs an @ordinal"))?;
            match kind {
                "panic" => {
                    let n = parse_ordinal(at)?;
                    plan.schedule(n, ChaosFault::Panic);
                }
                "stall" => {
                    let (n, ms) = at
                        .split_once(':')
                        .ok_or_else(|| format!("stall fault {part:?} needs @ordinal:millis"))?;
                    let n = parse_ordinal(n)?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("bad stall millis in {part:?}"))?;
                    plan.schedule(n, ChaosFault::Stall(Duration::from_millis(ms)));
                }
                "corrupt" => {
                    let n = parse_ordinal(at)?;
                    plan.schedule(n, ChaosFault::CorruptCheckpoint);
                }
                // `flaky@N` — one flaky request; `flaky@N:K` — a burst
                // of K consecutive flaky requests starting at N (how a
                // storm trips the store circuit breaker, whose
                // threshold is *consecutive* failures).
                "flaky" => match at.split_once(':') {
                    Some((n, k)) => {
                        let n = parse_ordinal(n)?;
                        let k: u64 = k
                            .parse()
                            .map_err(|_| format!("bad flaky burst length in {part:?}"))?;
                        if k == 0 {
                            return Err(format!("flaky burst length must be ≥ 1 in {part:?}"));
                        }
                        for ordinal in n..n.saturating_add(k) {
                            plan.schedule(ordinal, ChaosFault::FlakyLoad);
                        }
                    }
                    None => {
                        let n = parse_ordinal(at)?;
                        plan.schedule(n, ChaosFault::FlakyLoad);
                    }
                },
                "kill" => {
                    let n = parse_ordinal(at)?;
                    plan.schedule(n, ChaosFault::KillWorker);
                }
                "wedge" => {
                    let (n, ms) = at
                        .split_once(':')
                        .ok_or_else(|| format!("wedge fault {part:?} needs @ordinal:millis"))?;
                    let n = parse_ordinal(n)?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("bad wedge millis in {part:?}"))?;
                    plan.schedule(n, ChaosFault::Wedge(Duration::from_millis(ms)));
                }
                other => return Err(format!("unknown chaos fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_ordinal(s: &str) -> Result<u64, String> {
    let n: u64 = s
        .parse()
        .map_err(|_| format!("bad chaos request ordinal {s:?}"))?;
    if n == 0 {
        return Err("chaos ordinals are 1-based".into());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_mixed_spec() {
        let plan: ChaosPlan = "panic@3, stall@5:200 ,corrupt@7,flaky@9".parse().unwrap();
        assert_eq!(plan.pending(), 4);
        assert_eq!(plan.take(3), vec![ChaosFault::Panic]);
        assert_eq!(
            plan.take(5),
            vec![ChaosFault::Stall(Duration::from_millis(200))]
        );
        assert_eq!(plan.take(7), vec![ChaosFault::CorruptCheckpoint]);
        assert_eq!(plan.take(9), vec![ChaosFault::FlakyLoad]);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn faults_fire_once() {
        let plan: ChaosPlan = "panic@1".parse().unwrap();
        assert_eq!(plan.take(1), vec![ChaosFault::Panic]);
        assert_eq!(plan.take(1), vec![]);
    }

    #[test]
    fn an_ordinal_can_carry_several_faults() {
        let plan: ChaosPlan = "stall@2:50,flaky@2".parse().unwrap();
        assert_eq!(plan.pending(), 2);
        assert_eq!(
            plan.take(2),
            vec![
                ChaosFault::Stall(Duration::from_millis(50)),
                ChaosFault::FlakyLoad
            ]
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn unfaulted_ordinals_are_clean() {
        let plan: ChaosPlan = "panic@2".parse().unwrap();
        assert_eq!(plan.take(1), vec![]);
        assert_eq!(plan.pending(), 1);
    }

    #[test]
    fn parses_supervision_faults() {
        let plan: ChaosPlan = "kill@4,wedge@6:500".parse().unwrap();
        assert_eq!(plan.take(4), vec![ChaosFault::KillWorker]);
        assert_eq!(
            plan.take(6),
            vec![ChaosFault::Wedge(Duration::from_millis(500))]
        );
    }

    #[test]
    fn flaky_bursts_expand_to_consecutive_ordinals() {
        let plan: ChaosPlan = "flaky@10:3".parse().unwrap();
        assert_eq!(plan.pending(), 3);
        for ordinal in 10..=12 {
            assert_eq!(plan.take(ordinal), vec![ChaosFault::FlakyLoad]);
        }
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("explode@1".parse::<ChaosPlan>().is_err());
        assert!("panic".parse::<ChaosPlan>().is_err());
        assert!("panic@zero".parse::<ChaosPlan>().is_err());
        assert!("panic@0".parse::<ChaosPlan>().is_err());
        assert!("stall@3".parse::<ChaosPlan>().is_err());
        assert!("stall@3:fast".parse::<ChaosPlan>().is_err());
        assert!("wedge@3".parse::<ChaosPlan>().is_err());
        assert!("wedge@3:slow".parse::<ChaosPlan>().is_err());
        assert!("flaky@3:0".parse::<ChaosPlan>().is_err());
        assert!("kill@0".parse::<ChaosPlan>().is_err());
    }

    #[test]
    fn empty_spec_is_a_clean_plan() {
        let plan: ChaosPlan = "".parse().unwrap();
        assert_eq!(plan.pending(), 0);
    }
}
