//! Dataset resolution shared by the daemon and the CLI.
//!
//! One name → `(PlanningInstance, PlannerParams)` mapping for the six
//! built-in datasets, so `rl-planner plan --dataset nyc` and a daemon
//! request `{"op":"plan","dataset":"nyc"}` are guaranteed to plan over
//! the same universe. The CLI delegates here.

use tpp_core::PlannerParams;
use tpp_model::PlanningInstance;

/// Every resolvable dataset name, for usage and error text.
pub const DATASET_NAMES: &str = "ds-ct cyber cs univ2 nyc paris";

/// Resolves a dataset name to its instance and default parameters.
pub fn resolve_dataset(name: &str) -> Result<(PlanningInstance, PlannerParams), String> {
    use tpp_datagen::defaults::*;
    let (instance, params) = match name {
        "ds-ct" => (
            tpp_datagen::univ1_ds_ct(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "cyber" => (
            tpp_datagen::univ1_cyber(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "cs" => (
            tpp_datagen::univ1_cs(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "univ2" => (
            tpp_datagen::univ2_ds(UNIV2_SEED),
            PlannerParams::univ2_defaults(),
        ),
        "nyc" => (
            tpp_datagen::nyc(NYC_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        "paris" => (
            tpp_datagen::paris(PARIS_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        other => {
            return Err(format!(
                "unknown dataset {other:?}; valid datasets: {DATASET_NAMES}"
            ))
        }
    };
    Ok((instance, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_advertised_name() {
        for name in DATASET_NAMES.split_whitespace() {
            let (instance, _) = resolve_dataset(name).unwrap();
            assert!(!instance.catalog.is_empty(), "{name} resolved empty");
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_ones() {
        let err = resolve_dataset("atlantis").unwrap_err();
        assert!(err.contains("atlantis") && err.contains("nyc"), "{err}");
    }
}
