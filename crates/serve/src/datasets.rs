//! Dataset resolution shared by the daemon and the CLI.
//!
//! One name → `(PlanningInstance, PlannerParams)` mapping for the
//! built-in datasets, so `rl-planner plan --dataset nyc` and a daemon
//! request `{"op":"plan","dataset":"nyc"}` are guaranteed to plan over
//! the same universe. The CLI delegates here. A name ending in `.json`
//! is instead loaded from disk as a serialized [`PlanningInstance`] and
//! validated, so user-supplied catalogs go through the same model
//! checks (template shape, POI attributes, start item) as the
//! built-ins before a planner ever runs on them.

use tpp_core::PlannerParams;
use tpp_model::PlanningInstance;

/// Every resolvable dataset name, for usage and error text.
pub const DATASET_NAMES: &str = "ds-ct cyber cs univ2 nyc paris city-1k city-10k city-100k";

/// Loads and validates a user-supplied instance file; parameters default
/// by instance kind (trip vs. course).
fn load_instance_file(path: &str) -> Result<(PlanningInstance, PlannerParams), String> {
    let instance: PlanningInstance =
        tpp_store::load_json(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    instance
        .validate()
        .map_err(|e| format!("invalid instance in {path:?}: {e}"))?;
    let params = if instance.is_trip() {
        PlannerParams::trip_defaults()
    } else {
        PlannerParams::univ1_defaults()
    };
    Ok((instance, params))
}

/// Resolves a dataset name (or a `*.json` instance path) to its instance
/// and default parameters.
pub fn resolve_dataset(name: &str) -> Result<(PlanningInstance, PlannerParams), String> {
    use tpp_datagen::defaults::*;
    if name.ends_with(".json") {
        return load_instance_file(name);
    }
    let (instance, params) = match name {
        "ds-ct" => (
            tpp_datagen::univ1_ds_ct(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "cyber" => (
            tpp_datagen::univ1_cyber(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "cs" => (
            tpp_datagen::univ1_cs(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        "univ2" => (
            tpp_datagen::univ2_ds(UNIV2_SEED),
            PlannerParams::univ2_defaults(),
        ),
        "nyc" => (
            tpp_datagen::nyc(NYC_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        "paris" => (
            tpp_datagen::paris(PARIS_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        // City-scale synthetic catalogs. Default params flip to the
        // sparse Q representation and grid-pruned shortlists
        // automatically past DENSE_AUTO_MAX items (QReprMode::Auto /
        // ShortlistMode::Auto), so city-1k measures the dense baseline
        // while city-10k/-100k exercise the large-n fast paths.
        "city-1k" => (
            tpp_datagen::city_1k(CITY_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        "city-10k" => (
            tpp_datagen::city_10k(CITY_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        "city-100k" => (
            tpp_datagen::city_100k(CITY_SEED).instance,
            PlannerParams::trip_defaults(),
        ),
        other => {
            return Err(format!(
                "unknown dataset {other:?}; valid datasets: {DATASET_NAMES}, \
                 or a path to a serialized instance ending in .json"
            ))
        }
    };
    Ok((instance, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_advertised_name() {
        for name in DATASET_NAMES.split_whitespace() {
            let (instance, _) = resolve_dataset(name).unwrap();
            assert!(!instance.catalog.is_empty(), "{name} resolved empty");
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_ones() {
        let err = resolve_dataset("atlantis").unwrap_err();
        assert!(err.contains("atlantis") && err.contains("nyc"), "{err}");
    }

    #[test]
    fn json_path_round_trips_a_valid_instance() {
        let dir = std::env::temp_dir().join("tpp-serve-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nyc.json");
        let (built_in, _) = resolve_dataset("nyc").unwrap();
        tpp_store::save_json(&path, &built_in).unwrap();
        let (loaded, params) = resolve_dataset(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.catalog.len(), built_in.catalog.len());
        assert!(loaded.is_trip());
        assert_eq!(params, PlannerParams::trip_defaults());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_path_rejects_poiless_trip_instance() {
        // A trip-flagged instance whose items lack POI attributes must
        // be caught at resolve time with the typed validation error —
        // not panic later inside the environment's distance code.
        let dir = std::env::temp_dir().join("tpp-serve-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poiless.json");
        let (mut inst, _) = resolve_dataset("ds-ct").unwrap();
        inst.trip = Some(tpp_model::TripConstraints::default());
        tpp_store::save_json(&path, &inst).unwrap();
        let err = resolve_dataset(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("POI attributes"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_json_file_is_an_error_not_a_panic() {
        let err = resolve_dataset("/nonexistent/nowhere.json").unwrap_err();
        assert!(err.contains("nowhere.json"), "{err}");
    }
}
