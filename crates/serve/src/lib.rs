//! # tpp-serve
//!
//! A long-lived planning daemon around the RL-Planner stack. The CLI's
//! one-shot subcommands re-learn a policy per invocation; `tpp-serve`
//! keeps datasets and checkpoints warm and answers a stream of
//! newline-delimited JSON requests (`plan`, `recommend`, `health`,
//! `stats`) over stdin/stdout or a Unix socket.
//!
//! The contract is availability, not perfection:
//!
//! * **Every request receives exactly one terminal response line** —
//!   malformed JSON gets `bad_request`, a full queue gets `overloaded`,
//!   and nothing makes the process exit.
//! * **Deadlines are cooperative budgets** ([`tpp_core::Budget`]):
//!   a `deadline_ms` on a `plan` request bounds training wall-clock;
//!   an expired budget yields a usable (tagged) plan, not an error.
//! * **Panics are isolated** per request via `catch_unwind`, reported
//!   through `tpp-obs`, counted, and answered by a degraded tier.
//! * **Degradation is explicit**: the fallback chain — trained
//!   checkpoint policy → retry with exponential backoff on transient
//!   store errors (capped by the request's remaining deadline) → greedy
//!   EDA baseline → deterministic partial plan — records which tier
//!   served each response (`tier`, `degraded`).
//! * **Policies are cached and shared** ([`cache`]): an LRU keyed by
//!   `(dataset, constraint signature, policy source)` holds decoded
//!   Q-tables behind `Arc`, and identical in-flight requests coalesce
//!   onto one leader (single-flight), so a burst of duplicates costs
//!   one training run. Invalidation is generation-aware; a panicking
//!   leader fails its flight instead of wedging followers.
//!
//! The [`chaos`] module injects panics, stalls and checkpoint
//! corruption at chosen request ordinals so the integration suite (and
//! `scripts/check.sh`) can prove those properties deterministically.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod datasets;
pub mod engine;
pub mod protocol;
pub mod retry;
pub mod server;

pub use cache::{CacheConfig, CachedPolicy, Lookup, PolicyCache, PolicyKey, PolicySource};
pub use chaos::{ChaosFault, ChaosPlan};
pub use datasets::{resolve_dataset, DATASET_NAMES};
pub use engine::{ServeConfig, ServeEngine};
pub use protocol::{extract_raw_id, parse_request, JsonObj, Op, Request};
pub use retry::{with_backoff, with_backoff_budgeted, BackoffPolicy};
pub use server::{serve_lines, serve_unix, ServeSummary, ServerConfig};
