//! # tpp-serve
//!
//! A long-lived planning daemon around the RL-Planner stack. The CLI's
//! one-shot subcommands re-learn a policy per invocation; `tpp-serve`
//! keeps datasets and checkpoints warm and answers a stream of
//! newline-delimited JSON requests (`plan`, `recommend`, `health`,
//! `stats`, `metrics`, `shutdown`) over stdin/stdout, a Unix socket, or
//! TCP ([`tcp`]).
//!
//! The contract is availability, not perfection:
//!
//! * **Every request receives exactly one terminal response line** —
//!   malformed JSON gets `bad_request`, a full queue gets `overloaded`,
//!   and nothing makes the process exit.
//! * **Deadlines are cooperative budgets** ([`tpp_core::Budget`]):
//!   a `deadline_ms` on a `plan` request bounds training wall-clock;
//!   an expired budget yields a usable (tagged) plan, not an error.
//! * **Panics are isolated** per request via `catch_unwind`, reported
//!   through `tpp-obs`, counted, and answered by a degraded tier.
//! * **Degradation is explicit**: the fallback chain — trained
//!   checkpoint policy → retry with exponential backoff on transient
//!   store errors (capped by the request's remaining deadline) → greedy
//!   EDA baseline → deterministic partial plan — records which tier
//!   served each response (`tier`, `degraded`).
//! * **Policies are cached and shared** ([`cache`]): an LRU keyed by
//!   `(dataset, constraint signature, policy source)` holds decoded
//!   Q-tables behind `Arc`, and identical in-flight requests coalesce
//!   onto one leader (single-flight), so a burst of duplicates costs
//!   one training run. Invalidation is generation-aware; a panicking
//!   leader fails its flight instead of wedging followers.
//! * **Same-key requests batch at dequeue** ([`transport`],
//!   [`engine::ServeEngine::handle_batch`]): a worker that pops a
//!   planning job drains further queued jobs with the same batch key
//!   (op, dataset, start, seed, episodes) up to `--batch-max` (plus an
//!   optional `--batch-wait-us` linger), resolves the policy **once**,
//!   and answers every member from the shared `Arc` — each with its own
//!   trace, its own `plan`-phase timing, and `batched`/`batch_size`
//!   fields in the response. A mid-batch panic rescues every unanswered
//!   member with a terminal response.
//!
//! * **Every request is traced end to end**: the server mints a root
//!   [`tpp_obs::TraceCtx`] at ingestion and the worker re-enters it, so
//!   every event a request causes — queue wait, cache outcome, retries,
//!   budget expiry, even panic recovery — carries one `trace_id`.
//!   Per-phase latencies land in fixed-purpose histograms
//!   (`serve.queue_wait_us`, `serve.phase.{cache_lookup,checkpoint_load,
//!   train,plan,serialize}_us`, `serve.op.<op>_us`), exposed by the
//!   `metrics` op (Prometheus text + JSON snapshot) and summarized with
//!   p50/p95/p99/p999 in `stats`.
//! * **Incidents leave a post-mortem**: a [`tpp_obs::FlightRecorder`]
//!   ring (enabled via [`ServeConfig::flight_dir`]) is dumped as JSONL
//!   on panic recovery, shed, deadline overrun and slow requests.
//!
//! * **The TCP front end never wedges**: a connection supervisor
//!   enforces `max_connections`, admission control sheds *before*
//!   session admission when the bounded queue saturates (immediate
//!   `overloaded` with the request's echoed `id`, then close),
//!   per-connection read/idle timeouts defeat slow-loris clients, a
//!   per-line byte cap ([`framing`]) bounds memory, and a `shutdown`
//!   request begins a graceful drain — stop accepting, answer every
//!   in-flight request, then exit. `health` doubles as a readiness
//!   probe (`accepting` flips false while draining or saturated). The
//!   open-loop load harness ([`load`]) drives hundreds of concurrent
//!   connections with mixed hot/cold/malformed/slow traffic and
//!   asserts the core invariant from the outside: zero connections
//!   closed without a terminal response.
//!
//! * **The daemon self-heals** ([`transport`], [`breaker`],
//!   [`quarantine`]): the worker pool is supervised — workers stamp a
//!   heartbeat per dequeue, and a supervisor thread respawns workers
//!   that die (a panic escaping per-request isolation) and replaces
//!   workers wedged past a progress budget, within a restart budget,
//!   dumping the flight recorder on each incident. A dying worker's
//!   in-flight job is rescued with a terminal response during the
//!   unwind. A request key that repeatedly panics the engine is
//!   quarantined (served degraded for a cooldown instead of fed to
//!   another worker), and the checkpoint-store load path sits behind a
//!   closed/open/half-open circuit breaker so a down store costs one
//!   discovery, not every request's deadline.
//!
//! The [`chaos`] module injects panics, stalls, checkpoint corruption,
//! worker kills, wedges and flaky-load bursts at chosen request
//! ordinals so the integration suite (and `scripts/check.sh`) can
//! prove those properties deterministically.

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod datasets;
pub mod engine;
pub mod framing;
pub mod load;
pub mod protocol;
pub mod quarantine;
pub mod retry;
pub mod server;
pub mod tcp;
pub mod transport;

pub use breaker::{Admission, BreakerConfig, CircuitBreaker};
pub use cache::{CacheConfig, CachedPolicy, Lookup, PolicyCache, PolicyKey, PolicySource};
pub use chaos::{ChaosFault, ChaosPlan};
pub use datasets::{resolve_dataset, DATASET_NAMES};
pub use engine::{BatchItem, ServeConfig, ServeEngine};
pub use framing::{FramedLine, LineReader};
pub use load::{probe_health, run_load, LoadConfig, LoadProfile, LoadReport, Percentiles};
pub use protocol::{extract_raw_id, parse_request, JsonObj, Op, Request};
pub use quarantine::{Quarantine, QuarantineConfig};
pub use retry::{with_backoff, with_backoff_budgeted, BackoffPolicy};
pub use server::{serve_lines, serve_unix, ServeSummary, ServerConfig};
pub use tcp::{TcpConfig, TcpServer, TcpSummary};
pub use transport::{BatchConfig, ConnTrack, Job, SharedWriter, SupervisorConfig, TransportState};
