//! Checkpoint-store circuit breaker: closed / open / half-open.
//!
//! The budget-capped retry loop ([`crate::with_backoff_budgeted`])
//! protects one request from one transient failure — but when the
//! store is *down*, every request independently burns its deadline
//! rediscovering that fact before degrading. The breaker shares that
//! discovery across requests: consecutive transient load failures trip
//! it open, and while open every load fast-fails immediately so the
//! request spends its whole deadline on the EDA/partial tiers that can
//! actually answer. After a cooldown one probe request is let through
//! half-open; success closes the breaker, failure re-opens it for
//! another cooldown.
//!
//! Only errors [`tpp_store::StoreError::is_retryable`] classifies as
//! transient count as failures — a checksum mismatch means the store
//! is *reachable* and serving poison, which the generation-fallback
//! chain handles; tripping the breaker on it would mask a healthy
//! store. Successes and permanent errors both close the breaker for
//! the same reason: the store answered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tpp_obs::{obs_event, Level};

/// Breaker tuning. `failure_threshold` consecutive transient failures
/// trip the breaker open for `cooldown`.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Disabled breakers admit everything and record nothing.
    pub enabled: bool,
    /// Consecutive transient failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing half-open.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open {
        since: Instant,
    },
    /// One probe is in flight; `since` guards against a probe that
    /// never reports back (its worker died) wedging the breaker.
    HalfOpen {
        since: Instant,
    },
}

#[derive(Debug)]
struct Inner {
    state: State,
    consecutive_failures: u32,
}

/// Admission decision for one load attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed with the load.
    Allowed {
        /// `true` marks the single half-open probe; its outcome decides
        /// the breaker's next state.
        probe: bool,
    },
    /// The breaker is open: skip the store entirely and degrade now.
    FastFail {
        /// How long until the cooldown elapses and a probe is allowed.
        retry_in: Duration,
    },
}

/// A closed/open/half-open circuit breaker over the checkpoint store.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    opens: AtomicU64,
    closes: AtomicU64,
    fast_fails: AtomicU64,
    probes: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker starting closed with zero recorded failures.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: State::Closed,
                consecutive_failures: 0,
            }),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            fast_fails: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Plain-data critical section: a poisoned lock is still valid.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Decides whether a checkpoint load may hit the store right now.
    pub fn admit(&self) -> Admission {
        if !self.config.enabled {
            return Admission::Allowed { probe: false };
        }
        let mut inner = self.lock();
        match inner.state {
            State::Closed => Admission::Allowed { probe: false },
            State::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.config.cooldown {
                    inner.state = State::HalfOpen {
                        since: Instant::now(),
                    };
                    drop(inner);
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.breaker.probes").inc();
                    self.publish_state(2);
                    obs_event!(Level::Info, "serve.breaker_half_open");
                    Admission::Allowed { probe: true }
                } else {
                    drop(inner);
                    self.count_fast_fail();
                    Admission::FastFail {
                        retry_in: self.config.cooldown - elapsed,
                    }
                }
            }
            State::HalfOpen { since } => {
                // A probe that never reported back (its worker died
                // mid-load) must not wedge the breaker half-open
                // forever: after a full cooldown, assume it lost and
                // let a new probe through.
                if since.elapsed() >= self.config.cooldown {
                    inner.state = State::HalfOpen {
                        since: Instant::now(),
                    };
                    drop(inner);
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    tpp_obs::metrics().counter("serve.breaker.probes").inc();
                    Admission::Allowed { probe: true }
                } else {
                    drop(inner);
                    self.count_fast_fail();
                    Admission::FastFail {
                        retry_in: self.config.cooldown,
                    }
                }
            }
        }
    }

    /// The store answered (a load succeeded, or failed permanently —
    /// either way it is reachable): reset the failure streak and close.
    pub fn record_success(&self) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        if !matches!(inner.state, State::Closed) {
            inner.state = State::Closed;
            drop(inner);
            self.closes.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.breaker.closes").inc();
            self.publish_state(0);
            obs_event!(Level::Info, "serve.breaker_closed");
        }
    }

    /// A load attempt settled on a transient error. Trips the breaker
    /// at the threshold; a failed half-open probe re-opens immediately.
    pub fn record_failure(&self) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            State::Closed => inner.consecutive_failures >= self.config.failure_threshold.max(1),
            // A failed probe re-opens for another cooldown.
            State::HalfOpen { .. } => true,
            State::Open { .. } => false,
        };
        if trip {
            let failures = inner.consecutive_failures;
            inner.state = State::Open {
                since: Instant::now(),
            };
            drop(inner);
            self.opens.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.breaker.opens").inc();
            self.publish_state(1);
            obs_event!(
                Level::Warn,
                "serve.breaker_open",
                consecutive_failures = failures as u64,
                cooldown_ms = self.config.cooldown.as_millis() as u64,
            );
        }
    }

    fn count_fast_fail(&self) {
        self.fast_fails.fetch_add(1, Ordering::Relaxed);
        tpp_obs::metrics().counter("serve.breaker.fast_fail").inc();
    }

    fn publish_state(&self, code: u8) {
        tpp_obs::metrics()
            .gauge("serve.breaker.state")
            .set(code as f64);
    }

    /// `"closed"`, `"open"` or `"half_open"` for `stats`/`health`.
    pub fn state_name(&self) -> &'static str {
        match self.lock().state {
            State::Closed => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half_open",
        }
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Times the breaker recovered to closed.
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }

    /// Loads skipped while open.
    pub fn fast_fails(&self) -> u64 {
        self.fast_fails.load(Ordering::Relaxed)
    }

    /// Half-open probes admitted.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn stays_closed_below_the_threshold() {
        let b = breaker(3, 1_000);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(), Admission::Allowed { probe: false });
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = breaker(3, 1_000);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn trips_open_and_fast_fails() {
        let b = breaker(3, 60_000);
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 1);
        assert!(matches!(b.admit(), Admission::FastFail { .. }));
        assert_eq!(b.fast_fails(), 1);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = breaker(1, 10);
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admission::Allowed { probe: true });
        assert_eq!(b.state_name(), "half_open");
        // A second request during the probe still fast-fails.
        assert!(matches!(b.admit(), Admission::FastFail { .. }));
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.closes(), 1);
        assert_eq!(b.probes(), 1);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker(1, 10);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admission::Allowed { probe: true });
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 2);
        assert!(matches!(b.admit(), Admission::FastFail { .. }));
    }

    #[test]
    fn a_lost_probe_does_not_wedge_half_open() {
        let b = breaker(1, 10);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admission::Allowed { probe: true });
        // The probe never reports back; after another cooldown a new
        // probe is admitted.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admission::Allowed { probe: true });
        assert_eq!(b.probes(), 2);
    }

    #[test]
    fn disabled_breaker_is_transparent() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        });
        for _ in 0..100 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admission::Allowed { probe: false });
        assert_eq!(b.opens(), 0);
    }
}
