//! The policy cache: LRU + single-flight coalescing for decoded
//! Q-policies.
//!
//! The paper's core economic argument (§III) is that a trained Q-policy
//! amortizes across every user planning over the same constrained
//! universe. PR 3's daemon ignored that: each `plan` retrained and each
//! `recommend` re-read and re-decoded a checkpoint from disk. This
//! module makes the policy a cached, shared artifact:
//!
//! * **Keying.** Entries key on `(dataset, constraint signature,
//!   source)`. The signature is [`tpp_core::constraint_signature`] —
//!   the canonical hash of the hard + soft (+ trip) constraint bundle —
//!   so two datasets that happen to share a name but differ in
//!   constraints can never alias. The source pins *which* policy:
//!   [`PolicySource::Trained`] carries `(seed, episodes, start)` so
//!   deterministic training is reproducible from the key alone;
//!   [`PolicySource::Checkpoint`] carries the generation-stamp token
//!   (see [`tpp_store::GenerationStamp::token`]), so a new generation —
//!   or in-place corruption of the newest file — *is a different key*
//!   and stale entries become unreachable, then reaped by
//!   [`PolicyCache::invalidate_checkpoints`].
//! * **Single-flight.** The first thread to miss on a key becomes the
//!   **leader** and receives a [`LeaderGuard`]; concurrent requests for
//!   the same key become **followers** that block on the flight's
//!   condvar and share the leader's `Arc<CachedPolicy>`. A burst of N
//!   identical requests costs one training run / checkpoint decode.
//! * **Panic safety.** Dropping a `LeaderGuard` without settling it
//!   (the unwind path of a panicking leader) fails the flight, so
//!   followers wake immediately and re-run their own fallback chain —
//!   a poisoned leader can never wedge the daemon.
//! * **Bounds.** Entry-count and approximate-byte LRU, so a parade of
//!   large instances evicts cold policies instead of growing without
//!   bound. Every hit/miss/coalesce/evict/invalidate bumps a local
//!   counter (for `stats`) and a `tpp-obs` counter (for sinks).

use crate::transport::count_lock_recovered;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tpp_obs::{obs_event, Level};
use tpp_rl::QTable;

/// Locks a cache-layer mutex, recovering from poisoning instead of
/// propagating it. Both maps under these locks (`entries`, `inflight`)
/// and the flight state are plain data that every mutation leaves
/// consistent, so a panic in some other holder never tears them — and
/// propagating here would turn one panicking leader into a panic in
/// every follower that touches the same flight (a worker-pool-wide
/// cascade the supervisor would then have to mop up).
fn lock_recovering<'a, T>(mutex: &'a Mutex<T>, which: &'static str) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        count_lock_recovered(which);
        poisoned.into_inner()
    })
}

/// Which computation produced (or would produce) a cached policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PolicySource {
    /// Deterministic in-process training: the triple reproduces the
    /// exact Q-table, so equal keys imply bit-identical policies.
    Trained {
        /// Training seed.
        seed: u64,
        /// Episode cap actually applied.
        episodes: u64,
        /// Start item index (training trajectories depend on it).
        start: usize,
    },
    /// A decoded checkpoint generation, pinned by its stamp token; any
    /// rotation or in-place rewrite of the newest file changes the
    /// token and therefore the key.
    Checkpoint {
        /// [`tpp_store::GenerationStamp::token`] of the observed newest
        /// generation.
        token: u64,
    },
}

/// Cache key: dataset identity × constraint signature × policy source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolicyKey {
    /// Dataset name or instance path, as given in the request.
    pub dataset: String,
    /// [`tpp_core::constraint_signature`] of the instance.
    pub signature: u64,
    /// Which policy over that universe.
    pub source: PolicySource,
}

/// A decoded, shareable policy. Held behind `Arc` so every worker
/// thread reads the same table — the read path (`recommend_with_q`)
/// takes `&QTable` and never clones the values.
#[derive(Debug)]
pub struct CachedPolicy {
    /// The decoded action-value table.
    pub q: QTable,
    /// Episodes trained (for `Trained` entries; echoed in responses).
    pub episodes: Option<u64>,
    /// Checkpoint generation number (for `Checkpoint` entries).
    pub generation: Option<u64>,
}

impl CachedPolicy {
    /// Approximate resident bytes, used for the byte bound.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.q.approx_bytes()
    }
}

/// Cache sizing and enablement.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Whether the cache (and single-flight) is consulted at all.
    pub enabled: bool,
    /// Maximum resident entries.
    pub max_entries: usize,
    /// Maximum approximate resident bytes across all entries.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            max_entries: 32,
            // A Q-table is ~8·n² bytes, so 64 MiB holds several
            // thousand-item policies alongside the benchmark sets.
            max_bytes: 64 << 20,
        }
    }
}

/// Monotonic cache counters, surfaced in `stats` responses.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Lookups served from a resident entry.
    pub hits: AtomicU64,
    /// Lookups that found nothing and became the leader.
    pub misses: AtomicU64,
    /// Lookups that joined an in-flight leader.
    pub coalesced: AtomicU64,
    /// Entries evicted by the entry/byte LRU bounds.
    pub evictions: AtomicU64,
    /// Stale checkpoint entries reaped by generation invalidation.
    pub invalidations: AtomicU64,
}

/// State of one in-flight computation.
#[derive(Debug)]
enum FlightState {
    /// Leader is still working.
    Running,
    /// Leader finished; followers share the value.
    Done(Arc<CachedPolicy>),
    /// Leader failed (error, budget expiry, or panic via guard drop);
    /// followers must compute solo.
    Failed(String),
}

/// One single-flight slot: followers wait on `cond` until the leader
/// settles `state`.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cond: Condvar,
}

#[derive(Debug)]
struct Entry {
    value: Arc<CachedPolicy>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<PolicyKey, Entry>,
    inflight: HashMap<PolicyKey, Arc<Flight>>,
    /// Logical LRU clock (bumped per touch; cheaper than Instant).
    tick: u64,
    /// Approximate resident bytes across `entries`.
    bytes: usize,
}

/// The shared policy cache (one per engine, shared by worker threads).
#[derive(Debug)]
pub struct PolicyCache {
    inner: Mutex<CacheInner>,
    /// Counters for `stats` and the exit summary.
    pub counters: CacheCounters,
    config: CacheConfig,
}

/// Outcome of a [`PolicyCache::lookup`].
pub enum Lookup<'c> {
    /// Resident entry: use it directly.
    Hit(Arc<CachedPolicy>),
    /// A concurrent leader computed it while we waited.
    Coalesced(Arc<CachedPolicy>),
    /// We are the leader: compute, then settle the guard.
    Lead(LeaderGuard<'c>),
    /// The leader failed or the wait timed out: compute solo, uncached.
    LeaderFailed(String),
}

impl PolicyCache {
    /// Creates an empty cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        PolicyCache {
            inner: Mutex::new(CacheInner::default()),
            counters: CacheCounters::default(),
            config,
        }
    }

    /// Whether the cache is consulted at all.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// `(resident entries, approximate resident bytes)`.
    pub fn usage(&self) -> (usize, usize) {
        let inner = lock_recovering(&self.inner, "policy_cache");
        (inner.entries.len(), inner.bytes)
    }

    /// Looks up `key`. A resident entry is a [`Lookup::Hit`]; an
    /// in-flight computation for the same key blocks up to
    /// `follower_wait` and yields [`Lookup::Coalesced`] (or
    /// [`Lookup::LeaderFailed`] on leader failure/timeout); a cold key
    /// makes this caller the [`Lookup::Lead`]er.
    pub fn lookup(&self, key: PolicyKey, follower_wait: Duration) -> Lookup<'_> {
        let flight = {
            let mut inner = lock_recovering(&self.inner, "policy_cache");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let value = Arc::clone(&entry.value);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.cache.hit").inc();
                return Lookup::Hit(value);
            }
            if let Some(flight) = inner.inflight.get(&key) {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.cache.coalesced").inc();
                Arc::clone(flight)
            } else {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.cache.miss").inc();
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState::Running),
                    cond: Condvar::new(),
                });
                inner.inflight.insert(key.clone(), Arc::clone(&flight));
                return Lookup::Lead(LeaderGuard {
                    cache: self,
                    key,
                    flight,
                    settled: false,
                });
            }
        };
        self.wait_on(&flight, follower_wait)
    }

    /// Blocks on a flight until the leader settles it or `timeout`
    /// elapses. A timeout is reported as a leader failure so the caller
    /// falls back to solo computation — it never re-queues.
    fn wait_on(&self, flight: &Flight, timeout: Duration) -> Lookup<'_> {
        let deadline = Instant::now() + timeout;
        let mut state = lock_recovering(&flight.state, "flight");
        loop {
            match &*state {
                FlightState::Done(v) => return Lookup::Coalesced(Arc::clone(v)),
                FlightState::Failed(reason) => return Lookup::LeaderFailed(reason.clone()),
                FlightState::Running => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Lookup::LeaderFailed(
                            "timed out waiting for the in-flight leader".to_owned(),
                        );
                    }
                    let (next, _) = flight
                        .cond
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poisoned| {
                            count_lock_recovered("flight");
                            poisoned.into_inner()
                        });
                    state = next;
                }
            }
        }
    }

    /// Inserts a finished value, evicting LRU entries (never the one
    /// just inserted) while over the entry or byte bound. A value that
    /// alone exceeds the byte bound is not cached at all.
    fn insert(&self, key: &PolicyKey, value: Arc<CachedPolicy>) {
        let bytes = value.approx_bytes();
        if bytes > self.config.max_bytes {
            obs_event!(
                Level::Warn,
                "serve.cache.oversized",
                dataset = &key.dataset,
                bytes = bytes as u64,
                max_bytes = self.config.max_bytes as u64,
            );
            return;
        }
        let mut inner = lock_recovering(&self.inner, "policy_cache");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            key.clone(),
            Entry {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.entries.len() > self.config.max_entries || inner.bytes > self.config.max_bytes {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.bytes -= evicted.bytes;
            }
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            tpp_obs::metrics().counter("serve.cache.evicted").inc();
        }
        Self::publish_gauges(&inner);
    }

    /// Drops every checkpoint-sourced entry for `dataset` whose token
    /// differs from `current_token` (a newer generation landed, or the
    /// newest file was modified in place). Returns how many were
    /// reaped. Trained entries are untouched — training does not read
    /// the checkpoint directory.
    pub fn invalidate_checkpoints(&self, dataset: &str, current_token: u64) -> usize {
        let mut inner = lock_recovering(&self.inner, "policy_cache");
        let stale: Vec<PolicyKey> = inner
            .entries
            .keys()
            .filter(|k| {
                k.dataset == dataset
                    && matches!(k.source, PolicySource::Checkpoint { token } if token != current_token)
            })
            .cloned()
            .collect();
        for key in &stale {
            if let Some(entry) = inner.entries.remove(key) {
                inner.bytes -= entry.bytes;
            }
        }
        if !stale.is_empty() {
            self.counters
                .invalidations
                .fetch_add(stale.len() as u64, Ordering::Relaxed);
            tpp_obs::metrics()
                .counter("serve.cache.invalidated")
                .add(stale.len() as u64);
            obs_event!(
                Level::Info,
                "serve.cache.invalidated",
                dataset = dataset,
                dropped = stale.len() as u64,
            );
            Self::publish_gauges(&inner);
        }
        stale.len()
    }

    fn publish_gauges(inner: &CacheInner) {
        tpp_obs::metrics()
            .gauge("serve.cache.entries")
            .set(inner.entries.len() as f64);
        tpp_obs::metrics()
            .gauge("serve.cache.bytes")
            .set(inner.bytes as f64);
    }
}

/// Held by the one thread computing a cold key. Must be settled with
/// [`fulfill`](LeaderGuard::fulfill) (cache + wake followers),
/// [`fulfill_uncached`](LeaderGuard::fulfill_uncached) (wake followers
/// but keep the value out of the cache — e.g. a partial policy from an
/// expired budget), or [`fail`](LeaderGuard::fail). Dropping it
/// unsettled — the unwind path of a panicking leader — fails the
/// flight, so followers can never block on a dead leader.
pub struct LeaderGuard<'c> {
    cache: &'c PolicyCache,
    key: PolicyKey,
    flight: Arc<Flight>,
    settled: bool,
}

impl LeaderGuard<'_> {
    /// The key this flight is computing.
    pub fn key(&self) -> &PolicyKey {
        &self.key
    }

    /// Caches `value` and hands it to every waiting follower.
    pub fn fulfill(mut self, value: Arc<CachedPolicy>) {
        self.cache.insert(&self.key, Arc::clone(&value));
        self.settle(FlightState::Done(value));
    }

    /// Hands `value` to followers without caching it (the result is
    /// usable for in-flight requests but not representative — e.g.
    /// training stopped early on budget expiry).
    pub fn fulfill_uncached(mut self, value: Arc<CachedPolicy>) {
        self.settle(FlightState::Done(value));
    }

    /// Fails the flight; followers fall back to solo computation.
    pub fn fail(mut self, reason: &str) {
        self.settle(FlightState::Failed(reason.to_owned()));
    }

    /// Settles the flight. This runs on the leader's unwind path (via
    /// `Drop`), so it must be panic-proof: both locks recover from
    /// poisoning, because panicking here during an unwind would be a
    /// double panic (abort) — and a settle that gives up early would
    /// leave followers blocked until their deadlines on a flight nobody
    /// will ever finish. Followers are always woken with a terminal
    /// state.
    fn settle(&mut self, state: FlightState) {
        if self.settled {
            return;
        }
        self.settled = true;
        lock_recovering(&self.cache.inner, "policy_cache")
            .inflight
            .remove(&self.key);
        *lock_recovering(&self.flight.state, "flight") = state;
        self.flight.cond.notify_all();
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.settled {
            tpp_obs::metrics()
                .counter("serve.cache.leader_failed")
                .inc();
            self.settle(FlightState::Failed(
                "leader dropped without settling (panicked?)".to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(n: usize) -> Arc<CachedPolicy> {
        Arc::new(CachedPolicy {
            q: QTable::square(n),
            episodes: Some(n as u64),
            generation: None,
        })
    }

    fn trained_key(dataset: &str, seed: u64) -> PolicyKey {
        PolicyKey {
            dataset: dataset.to_owned(),
            signature: 0xABCD,
            source: PolicySource::Trained {
                seed,
                episodes: 100,
                start: 0,
            },
        }
    }

    fn ckpt_key(dataset: &str, token: u64) -> PolicyKey {
        PolicyKey {
            dataset: dataset.to_owned(),
            signature: 0xABCD,
            source: PolicySource::Checkpoint { token },
        }
    }

    fn cache(max_entries: usize, max_bytes: usize) -> PolicyCache {
        PolicyCache::new(CacheConfig {
            enabled: true,
            max_entries,
            max_bytes,
        })
    }

    #[test]
    fn miss_lead_fulfill_then_hit() {
        let c = cache(4, usize::MAX);
        let key = trained_key("ds", 1);
        let Lookup::Lead(guard) = c.lookup(key.clone(), Duration::ZERO) else {
            panic!("cold key must lead");
        };
        guard.fulfill(policy(3));
        match c.lookup(key, Duration::ZERO) {
            Lookup::Hit(p) => assert_eq!(p.episodes, Some(3)),
            _ => panic!("second lookup must hit"),
        }
        assert_eq!(c.counters.misses.load(Ordering::Relaxed), 1);
        assert_eq!(c.counters.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn followers_coalesce_onto_one_leader() {
        let c = Arc::new(cache(4, usize::MAX));
        let key = trained_key("ds", 7);
        let Lookup::Lead(guard) = c.lookup(key.clone(), Duration::ZERO) else {
            panic!("cold key must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let key = key.clone();
                std::thread::spawn(move || match c.lookup(key, Duration::from_secs(5)) {
                    Lookup::Coalesced(p) => p.episodes,
                    other => panic!(
                        "follower must coalesce, got {}",
                        match other {
                            Lookup::Hit(_) => "hit",
                            Lookup::Lead(_) => "lead",
                            Lookup::LeaderFailed(_) => "leader-failed",
                            Lookup::Coalesced(_) => unreachable!(),
                        }
                    ),
                })
            })
            .collect();
        // Give followers time to queue on the flight, then settle it.
        std::thread::sleep(Duration::from_millis(30));
        guard.fulfill(policy(5));
        for f in followers {
            assert_eq!(f.join().unwrap(), Some(5));
        }
        assert_eq!(c.counters.misses.load(Ordering::Relaxed), 1);
        assert_eq!(c.counters.coalesced.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn dropped_leader_fails_followers_instead_of_wedging_them() {
        let c = Arc::new(cache(4, usize::MAX));
        let key = trained_key("ds", 9);
        let Lookup::Lead(guard) = c.lookup(key.clone(), Duration::ZERO) else {
            panic!("cold key must lead");
        };
        let follower = {
            let c = Arc::clone(&c);
            let key = key.clone();
            std::thread::spawn(move || {
                matches!(
                    c.lookup(key, Duration::from_secs(5)),
                    Lookup::LeaderFailed(_)
                )
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // the panic path: no fulfill, no fail
        assert!(follower.join().unwrap(), "follower must see LeaderFailed");
        // The slot is free again: the next lookup leads a fresh flight.
        assert!(matches!(c.lookup(key, Duration::ZERO), Lookup::Lead(_)));
    }

    /// Regression: the leader panics *while holding the flight lock*.
    /// Before `PoisonError::into_inner` recovery, the poisoned mutex
    /// made every follower (and the leader's own unwind-path settle)
    /// panic too — one bad request killed the whole worker pool. Now
    /// every follower must get a terminal `LeaderFailed`, no thread may
    /// die, and the recovery must be counted.
    #[test]
    fn leader_panicking_while_holding_the_flight_lock_still_fails_followers() {
        let c = Arc::new(cache(4, usize::MAX));
        let key = trained_key("ds", 11);
        let Lookup::Lead(guard) = c.lookup(key.clone(), Duration::ZERO) else {
            panic!("cold key must lead");
        };
        let recovered_before = tpp_obs::metrics().counter("serve.lock_recovered").get();

        // Poison the flight mutex: a helper panics while holding it —
        // the worst-case moment for a leader crash.
        let flight = Arc::clone(&guard.flight);
        let poisoner = std::thread::spawn(move || {
            let _held = flight.state.lock().unwrap();
            panic!("poison the flight lock");
        });
        assert!(poisoner.join().is_err(), "poisoner must panic");

        // Followers queue on the (now poisoned) flight.
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                let key = key.clone();
                std::thread::spawn(move || {
                    matches!(
                        c.lookup(key, Duration::from_secs(5)),
                        Lookup::LeaderFailed(_)
                    )
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));

        // The leader unwinds without settling. With a poisoned flight
        // lock this used to panic inside Drop (a double panic → abort
        // on a real unwind); now it recovers and wakes every follower
        // with a terminal Failed.
        drop(guard);
        for f in followers {
            assert!(
                f.join().expect("follower thread must not die"),
                "follower must see LeaderFailed"
            );
        }
        // The slot is free again and the recovery was counted.
        assert!(matches!(c.lookup(key, Duration::ZERO), Lookup::Lead(_)));
        assert!(
            tpp_obs::metrics().counter("serve.lock_recovered").get() > recovered_before,
            "poison recovery must increment serve.lock_recovered"
        );
    }

    #[test]
    fn entry_bound_evicts_lru() {
        let c = cache(2, usize::MAX);
        for seed in 0..3u64 {
            let Lookup::Lead(g) = c.lookup(trained_key("ds", seed), Duration::ZERO) else {
                panic!("lead");
            };
            g.fulfill(policy(2));
            // Touch seed 0 so seed 1 is the LRU victim when 2 lands.
            if seed == 1 {
                assert!(matches!(
                    c.lookup(trained_key("ds", 0), Duration::ZERO),
                    Lookup::Hit(_)
                ));
            }
        }
        assert_eq!(c.counters.evictions.load(Ordering::Relaxed), 1);
        assert!(matches!(
            c.lookup(trained_key("ds", 0), Duration::ZERO),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            c.lookup(trained_key("ds", 1), Duration::ZERO),
            Lookup::Lead(_)
        ));
    }

    #[test]
    fn byte_bound_evicts_and_oversized_values_are_not_cached() {
        let one = policy(8).approx_bytes();
        let c = cache(100, 2 * one + one / 2);
        for seed in 0..3u64 {
            let Lookup::Lead(g) = c.lookup(trained_key("ds", seed), Duration::ZERO) else {
                panic!("lead");
            };
            g.fulfill(policy(8));
        }
        let (entries, bytes) = c.usage();
        assert_eq!(entries, 2, "byte bound must hold the cache to 2 entries");
        assert!(bytes <= 2 * one + one / 2);
        assert_eq!(c.counters.evictions.load(Ordering::Relaxed), 1);

        // A value that alone busts the bound is served but never cached.
        let tiny = cache(100, 64);
        let key = trained_key("ds", 99);
        let Lookup::Lead(g) = tiny.lookup(key.clone(), Duration::ZERO) else {
            panic!("lead");
        };
        g.fulfill(policy(64));
        assert_eq!(tiny.usage().0, 0);
        assert!(matches!(tiny.lookup(key, Duration::ZERO), Lookup::Lead(_)));
    }

    #[test]
    fn stale_checkpoint_tokens_are_invalidated_per_dataset() {
        let c = cache(8, usize::MAX);
        for (ds, token) in [("a", 1), ("a", 2), ("b", 1)] {
            let Lookup::Lead(g) = c.lookup(ckpt_key(ds, token), Duration::ZERO) else {
                panic!("lead");
            };
            g.fulfill(policy(2));
        }
        // Trained entries for the same dataset must survive.
        let Lookup::Lead(g) = c.lookup(trained_key("a", 0), Duration::ZERO) else {
            panic!("lead");
        };
        g.fulfill(policy(2));

        assert_eq!(c.invalidate_checkpoints("a", 2), 1);
        assert_eq!(c.counters.invalidations.load(Ordering::Relaxed), 1);
        assert!(matches!(
            c.lookup(ckpt_key("a", 2), Duration::ZERO),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            c.lookup(ckpt_key("a", 1), Duration::ZERO),
            Lookup::Lead(_)
        ));
        assert!(matches!(
            c.lookup(ckpt_key("b", 1), Duration::ZERO),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            c.lookup(trained_key("a", 0), Duration::ZERO),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn follower_timeout_reports_leader_failure() {
        let c = cache(4, usize::MAX);
        let key = trained_key("ds", 3);
        let Lookup::Lead(_guard) = c.lookup(key.clone(), Duration::ZERO) else {
            panic!("lead");
        };
        match c.lookup(key, Duration::from_millis(10)) {
            Lookup::LeaderFailed(reason) => assert!(reason.contains("timed out")),
            _ => panic!("waiting on a stuck leader must time out"),
        };
    }
}
