//! Open-loop load generation against a TCP daemon.
//!
//! [`run_load`] drives a fixed **arrival schedule** — connection `i`
//! opens at `start + i/rate`, regardless of how fast earlier requests
//! complete — which is the schedule that actually finds capacity
//! cliffs: a closed-loop client slows down with the server and hides
//! them. Each arrival is one TCP connection carrying one request from
//! a seeded traffic mix ([`LoadProfile`]):
//!
//! * **hot** — a plan request with a fixed seed: after the first, every
//!   one hits the policy cache;
//! * **cold** — a plan request with a per-arrival seed, forcing a train
//!   under the request's `deadline_ms` budget;
//! * **malformed** — deliberately broken JSON (with a scannable `id`),
//!   which must come back as `bad_request` echoing that id;
//! * **slow** — a slow-loris client: sends a partial line and stalls,
//!   expecting the server's idle timeout to close it.
//!
//! The harness classifies every outcome from the **client's** side of
//! the wire and asserts the serving invariant externally: a connection
//! that sent a complete request and saw EOF before any response line is
//! a `closed_without_response` — the number that must be zero.
//! Latencies are exact (sorted, not histogram-bucketed) p50/p99/p999.
//! After the storm the harness probes `health` on a fresh connection:
//! a daemon that survived must still answer with `accepting: true`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Relative weights of the five traffic kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadProfile {
    /// Cache-hot plan requests (fixed seed).
    pub hot: u32,
    /// Cache-cold plan requests (per-arrival seed; forces training).
    pub cold: u32,
    /// `recommend` requests — drive the checkpoint-*load* path (and so
    /// the store circuit breaker) instead of training.
    pub recommend: u32,
    /// Broken-JSON requests that must get `bad_request`.
    pub malformed: u32,
    /// Slow-loris connections that never complete a line.
    pub slow: u32,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            hot: 80,
            cold: 10,
            recommend: 0,
            malformed: 5,
            slow: 5,
        }
    }
}

impl LoadProfile {
    fn total(&self) -> u64 {
        (self.hot + self.cold + self.recommend + self.malformed + self.slow) as u64
    }

    /// Maps a uniform draw onto a traffic kind.
    fn pick(&self, draw: u64) -> Kind {
        let total = self.total().max(1);
        let mut r = draw % total;
        for (weight, kind) in [
            (self.hot as u64, Kind::Hot),
            (self.cold as u64, Kind::Cold),
            (self.recommend as u64, Kind::Recommend),
            (self.malformed as u64, Kind::Malformed),
            (self.slow as u64, Kind::Slow),
        ] {
            if r < weight {
                return kind;
            }
            r -= weight;
        }
        Kind::Hot
    }
}

impl FromStr for LoadProfile {
    type Err = String;

    /// Parses `hot=80,cold=10,recommend=0,malformed=5,slow=5` (missing
    /// keys keep 0; at least one weight must be positive), or the named
    /// preset `hot-heavy` — a near-pure same-key storm (92% hot plans
    /// with one shared batch key) built to exercise turn-level batching.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim() == "hot-heavy" {
            return Ok(LoadProfile {
                hot: 92,
                cold: 6,
                recommend: 0,
                malformed: 1,
                slow: 1,
            });
        }
        let mut p = LoadProfile {
            hot: 0,
            cold: 0,
            recommend: 0,
            malformed: 0,
            slow: 0,
        };
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad profile part {part:?} (want key=weight)"))?;
            let w: u32 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad weight in {part:?}"))?;
            match key.trim() {
                "hot" => p.hot = w,
                "cold" => p.cold = w,
                "recommend" => p.recommend = w,
                "malformed" => p.malformed = w,
                "slow" => p.slow = w,
                other => return Err(format!("unknown traffic kind {other:?}")),
            }
        }
        if p.total() == 0 {
            return Err("profile needs at least one positive weight".into());
        }
        Ok(p)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Hot,
    Cold,
    Recommend,
    Malformed,
    Slow,
}

/// Open-loop load run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Arrivals per second (open loop: the schedule does not slow down
    /// when the server does).
    pub rate: f64,
    /// How long to keep scheduling arrivals.
    pub duration: Duration,
    /// Dataset name for plan requests.
    pub dataset: String,
    /// Training episodes per cold plan request.
    pub episodes: u64,
    /// Cooperative deadline for plan requests.
    pub deadline_ms: u64,
    /// Base seed: hot requests reuse it, cold requests derive from it.
    pub seed: u64,
    /// Traffic mix.
    pub profile: LoadProfile,
    /// Client-side wait for a response before giving up.
    pub response_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rate: 100.0,
            duration: Duration::from_secs(2),
            dataset: "ds-ct".into(),
            episodes: 60,
            deadline_ms: 250,
            seed: 0,
            profile: LoadProfile::default(),
            response_timeout: Duration::from_secs(10),
        }
    }
}

/// Exact latency percentiles in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

impl Percentiles {
    /// Exact percentiles over `samples` (sorted in place; all zeros
    /// when empty).
    pub fn compute(samples: &mut [f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles {
                p50_ms: 0.0,
                p99_ms: 0.0,
                p999_ms: 0.0,
                max_ms: 0.0,
            };
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let at = |q: f64| {
            let idx = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            samples[idx.min(samples.len() - 1)]
        };
        Percentiles {
            p50_ms: at(0.50),
            p99_ms: at(0.99),
            p999_ms: at(0.999),
            max_ms: samples[samples.len() - 1],
        }
    }
}

/// What an open-loop run observed, entirely from the client side.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arrivals scheduled (connections attempted).
    pub arrivals: u64,
    /// Connections that sent a complete request line.
    pub sent: u64,
    /// Terminal response lines received.
    pub answered: u64,
    /// `ok: true` responses.
    pub ok: u64,
    /// `overloaded` sheds (queue or admission).
    pub overloaded: u64,
    /// `bad_request` responses (the malformed traffic's expected fate).
    pub bad_request: u64,
    /// Other `ok: false` responses (degraded-tier errors etc.).
    pub other_errors: u64,
    /// Complete requests with no response within the client timeout.
    pub client_timeouts: u64,
    /// Complete requests whose connection saw EOF before any response —
    /// the invariant breaker that must stay zero.
    pub closed_without_response: u64,
    /// TCP connects that failed outright.
    pub connect_failures: u64,
    /// Slow-loris connections opened.
    pub slow_conns: u64,
    /// Slow-loris connections the server closed (idle timeout working).
    pub slow_closed_by_server: u64,
    /// Latency over all answered requests.
    pub latency: Percentiles,
    /// Latency over `ok: true` responses only.
    pub latency_ok: Percentiles,
    /// `overloaded / sent`.
    pub shed_rate: f64,
    /// Arrivals per second actually achieved.
    pub achieved_rate: f64,
    /// Wall-clock of the whole run (schedule + stragglers).
    pub duration_s: f64,
    /// The post-storm `health` probe reported `accepting: true`.
    pub post_health_accepting: bool,
    /// Raw post-storm `health` response line.
    pub post_health: String,
}

enum ConnResult {
    Answered { ms: f64, class: Class },
    ClientTimeout,
    ClosedWithoutResponse,
    ConnectFailed,
    SlowClosed,
    SlowHung,
}

enum Class {
    Ok,
    Overloaded,
    BadRequest,
    OtherError,
}

/// splitmix64: per-arrival deterministic draws from the base seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(i.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn one_connection(addr: SocketAddr, kind: Kind, i: u64, config: &LoadConfig) -> ConnResult {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, config.response_timeout) else {
        return ConnResult::ConnectFailed;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.response_timeout));

    if kind == Kind::Slow {
        // Send a partial line and stall; a healthy server closes us at
        // its idle timeout without ever seeing a complete request.
        let _ = stream.write_all(b"{\"op\":\"hea");
        let _ = stream.flush();
        let mut byte = [0u8; 1];
        return match std::io::Read::read(&mut stream, &mut byte) {
            Ok(0) => ConnResult::SlowClosed,
            Ok(_) => ConnResult::SlowClosed, // server answered something; still closed next
            Err(_) => ConnResult::SlowHung,  // our own read timeout fired first
        };
    }

    let line = match kind {
        Kind::Hot => format!(
            r#"{{"op":"plan","dataset":"{}","episodes":{},"seed":{},"deadline_ms":{},"id":"h{}"}}"#,
            config.dataset, config.episodes, config.seed, config.deadline_ms, i
        ),
        Kind::Cold => format!(
            r#"{{"op":"plan","dataset":"{}","episodes":{},"seed":{},"deadline_ms":{},"id":"c{}"}}"#,
            config.dataset,
            config.episodes,
            config.seed.wrapping_add(1 + i),
            config.deadline_ms,
            i
        ),
        Kind::Recommend => format!(
            r#"{{"op":"recommend","dataset":"{}","deadline_ms":{},"id":"r{}"}}"#,
            config.dataset, config.deadline_ms, i
        ),
        // Scannable id, hopeless JSON: the response must be a
        // bad_request that still echoes the id.
        Kind::Malformed => format!(r#"{{"id":"m{i}","op":<<<not json"#),
        Kind::Slow => unreachable!(),
    };

    let t0 = Instant::now();
    if writeln!(stream, "{line}")
        .and_then(|()| stream.flush())
        .is_err()
    {
        return ConnResult::ClosedWithoutResponse;
    }
    let mut response = String::new();
    match BufReader::new(stream).read_line(&mut response) {
        Ok(0) => ConnResult::ClosedWithoutResponse,
        Ok(_) => {
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let class = if response.contains("\"ok\":true") {
                Class::Ok
            } else if response.contains("overloaded") {
                Class::Overloaded
            } else if response.contains("bad_request") {
                Class::BadRequest
            } else {
                Class::OtherError
            };
            ConnResult::Answered { ms, class }
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            ConnResult::ClientTimeout
        }
        Err(_) => ConnResult::ClosedWithoutResponse,
    }
}

/// Probes `health` on a fresh connection; returns the raw response and
/// whether it advertises `accepting: true`.
pub fn probe_health(addr: SocketAddr, timeout: Duration) -> (String, bool) {
    let probe = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.write_all(b"{\"op\":\"health\",\"id\":\"post-storm\"}\n")?;
        stream.flush()?;
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response)?;
        Ok(response.trim().to_string())
    };
    match probe() {
        Ok(response) => {
            let accepting = response.contains("\"accepting\":true");
            (response, accepting)
        }
        Err(e) => (format!("health probe failed: {e}"), false),
    }
}

/// Runs the open-loop storm against `addr` and classifies every
/// connection's fate. Blocks until all stragglers resolve, then probes
/// `health` once for the post-storm readiness verdict.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let total = ((config.rate * config.duration.as_secs_f64()).round() as u64).max(1);
    let start = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<(Kind, ConnResult)>();
    let mut handles = Vec::with_capacity(total as usize);
    for i in 0..total {
        // Open loop: arrival i fires at start + i/rate no matter how
        // the server is doing.
        let due = start + Duration::from_secs_f64(i as f64 / config.rate.max(1e-9));
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let kind = config.profile.pick(mix(config.seed, i));
        let tx = tx.clone();
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            let result = one_connection(addr, kind, i, &config);
            let _ = tx.send((kind, result));
        }));
    }
    drop(tx);

    let mut report = LoadReport {
        arrivals: total,
        sent: 0,
        answered: 0,
        ok: 0,
        overloaded: 0,
        bad_request: 0,
        other_errors: 0,
        client_timeouts: 0,
        closed_without_response: 0,
        connect_failures: 0,
        slow_conns: 0,
        slow_closed_by_server: 0,
        latency: Percentiles::compute(&mut []),
        latency_ok: Percentiles::compute(&mut []),
        shed_rate: 0.0,
        achieved_rate: 0.0,
        duration_s: 0.0,
        post_health_accepting: false,
        post_health: String::new(),
    };
    let mut all_ms = Vec::new();
    let mut ok_ms = Vec::new();
    for (kind, result) in rx {
        if kind == Kind::Slow {
            report.slow_conns += 1;
            match result {
                ConnResult::SlowClosed => report.slow_closed_by_server += 1,
                ConnResult::ConnectFailed => report.connect_failures += 1,
                _ => {}
            }
            continue;
        }
        match result {
            ConnResult::Answered { ms, class } => {
                report.sent += 1;
                report.answered += 1;
                all_ms.push(ms);
                match class {
                    Class::Ok => {
                        report.ok += 1;
                        ok_ms.push(ms);
                    }
                    Class::Overloaded => report.overloaded += 1,
                    Class::BadRequest => report.bad_request += 1,
                    Class::OtherError => report.other_errors += 1,
                }
            }
            ConnResult::ClientTimeout => {
                report.sent += 1;
                report.client_timeouts += 1;
            }
            ConnResult::ClosedWithoutResponse => {
                report.sent += 1;
                report.closed_without_response += 1;
            }
            ConnResult::ConnectFailed => report.connect_failures += 1,
            ConnResult::SlowClosed | ConnResult::SlowHung => {}
        }
    }
    for h in handles {
        let _ = h.join();
    }

    report.duration_s = start.elapsed().as_secs_f64();
    report.achieved_rate = total as f64 / report.duration_s.max(1e-9);
    report.latency = Percentiles::compute(&mut all_ms);
    report.latency_ok = Percentiles::compute(&mut ok_ms);
    report.shed_rate = if report.sent > 0 {
        report.overloaded as f64 / report.sent as f64
    } else {
        0.0
    };
    let (health, accepting) = probe_health(addr, config.response_timeout);
    report.post_health = health;
    report.post_health_accepting = accepting;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parses_and_rejects() {
        let p: LoadProfile = "hot=65,cold=20,recommend=5,malformed=5,slow=5"
            .parse()
            .unwrap();
        assert_eq!(
            p,
            LoadProfile {
                hot: 65,
                cold: 20,
                recommend: 5,
                malformed: 5,
                slow: 5
            }
        );
        assert!("hot=0,cold=0".parse::<LoadProfile>().is_err());
        assert!("warm=3".parse::<LoadProfile>().is_err());
        assert!("hot".parse::<LoadProfile>().is_err());
    }

    #[test]
    fn hot_heavy_preset_parses() {
        let p: LoadProfile = "hot-heavy".parse().unwrap();
        assert_eq!(p.hot, 92);
        assert!(p.hot > p.cold + p.recommend + p.malformed + p.slow);
        assert_eq!(p.recommend, 0, "hot-heavy keeps one batchable key hot");
    }

    #[test]
    fn profile_pick_is_deterministic_and_weighted() {
        let p = LoadProfile {
            hot: 1,
            cold: 0,
            recommend: 0,
            malformed: 0,
            slow: 1,
        };
        let kinds: Vec<Kind> = (0..100).map(|i| p.pick(mix(7, i))).collect();
        assert!(kinds.contains(&Kind::Hot));
        assert!(kinds.contains(&Kind::Slow));
        assert!(!kinds.contains(&Kind::Cold));
        let again: Vec<Kind> = (0..100).map(|i| p.pick(mix(7, i))).collect();
        assert_eq!(kinds, again);
    }

    #[test]
    fn percentiles_are_exact() {
        let mut samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let p = Percentiles::compute(&mut samples);
        assert_eq!(p.p50_ms, 500.0);
        assert_eq!(p.p99_ms, 990.0);
        assert_eq!(p.p999_ms, 999.0);
        assert_eq!(p.max_ms, 1000.0);
        assert_eq!(Percentiles::compute(&mut []).max_ms, 0.0);
    }
}
