//! Transport: bounded queue, worker pool, stdin/stdout and Unix socket.
//!
//! [`serve_lines`] is the core session loop, generic over any `Read`
//! input and `Write` output so the chaos tests can drive it with
//! in-memory buffers and the CLI can hand it stdin/stdout. Requests
//! enter the **bounded** queue of a [`WorkerPool`]; when it is full the
//! reader sheds the request immediately with an `overloaded` response
//! instead of buffering without limit — a slow planner must surface as
//! explicit back-pressure, not as unbounded memory growth followed by
//! an OOM kill.
//!
//! Framing is byte-level ([`crate::framing::LineReader`]): lines may
//! split across arbitrary read boundaries, `\r\n` is accepted, an
//! over-cap or invalid-UTF-8 line gets a terminal `bad_request`
//! (`"id": null`) and the **session survives** — one hostile line no
//! longer tears down a shared connection.
//!
//! Responses from concurrent workers interleave in completion order;
//! each response is written under one lock acquisition so lines never
//! tear. Clients correlate via the echoed `id`.
//!
//! Every accepted line is stamped with a fresh root [`tpp_obs::TraceCtx`]
//! **at ingestion** and with its enqueue time. The worker that dequeues
//! it re-enters that context, so queue wait (`serve.queue_wait_us`
//! histogram, `serve.queue_depth` gauge), the whole engine path, and
//! even shed responses all share the request's `trace_id`.
//!
//! A `shutdown` request begins a graceful drain: the session stops
//! reading new lines at the next line boundary, the pool answers
//! everything already queued, and the transport emits a traced
//! `serve.shutdown` event with drain counts. When the queue is
//! saturated, a `shutdown` line that would have been shed is handled
//! inline instead — an overloaded daemon must still be drainable.
//!
//! The TCP transport ([`crate::tcp`]) reuses the same pool, framing and
//! drain machinery with one shared pool across all connections.

use crate::engine::ServeEngine;
use crate::framing::{FramedLine, LineReader};
use crate::protocol::{parse_request, Op};
use crate::transport::{
    write_response, BatchConfig, Job, SharedWriter, SupervisorConfig, WorkerPool,
};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tpp_obs::{obs_event, Level, TraceCtx};

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queue capacity; requests beyond it are shed as `overloaded`.
    pub capacity: usize,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Stop after this many input lines (`None` = until EOF). Used by
    /// tests and bounded smoke runs.
    pub max_requests: Option<u64>,
    /// Per-line byte cap; longer lines are discarded and answered with
    /// a terminal `bad_request` while the session stays alive.
    pub max_line_bytes: usize,
    /// Worker-pool supervision (respawn budget, wedge detection).
    pub supervisor: SupervisorConfig,
    /// Turn-level plan batching (same-key dequeue-many, shared policy
    /// resolution).
    pub batch: BatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 64,
            workers: 2,
            max_requests: None,
            max_line_bytes: 256 * 1024,
            supervisor: SupervisorConfig::default(),
            batch: BatchConfig::default(),
        }
    }
}

/// What a serving session did, for the exit summary and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Input lines read (framing rejects included).
    pub received: u64,
    /// Responses written (sheds and framing rejects included) — must
    /// equal `received`.
    pub answered: u64,
    /// Requests shed by the bounded queue.
    pub overloaded: u64,
    /// Lines rejected by framing (over-cap or invalid UTF-8).
    pub bad_lines: u64,
    /// The session ended because a drain was requested.
    pub drained: bool,
}

/// `true` when `line` parses as a `shutdown` request — the one op that
/// must bypass a saturated queue, or an overloaded daemon could never
/// be drained.
pub(crate) fn is_shutdown_line(line: &str) -> bool {
    matches!(parse_request(line), Ok(r) if r.op == Op::Shutdown)
}

/// Emits the traced `serve.shutdown` event every transport ends with.
pub(crate) fn emit_shutdown(engine: &ServeEngine, transport: &str, received: u64, answered: u64) {
    let t = &engine.transport;
    obs_event!(
        Level::Info,
        "serve.shutdown",
        transport = transport,
        drained = t.draining(),
        received = received,
        answered = answered,
        drained_in_flight = t.drained_in_flight.load(Ordering::Relaxed),
        conns_accepted = t.conns_accepted.load(Ordering::Relaxed),
        conns_shed = t.conns_shed.load(Ordering::Relaxed),
        conn_timeouts = t.conn_timeouts.load(Ordering::Relaxed),
        undeliverable_responses = t.undeliverable_responses.load(Ordering::Relaxed),
    );
}

/// Serves newline-delimited requests from `input` to `output` until EOF
/// (or `max_requests`, or a `shutdown`-initiated drain), answering
/// every line exactly once.
pub fn serve_lines<R, W>(
    engine: Arc<ServeEngine>,
    input: R,
    output: W,
    config: &ServerConfig,
) -> ServeSummary
where
    R: std::io::Read,
    W: Write + Send + 'static,
{
    let capacity = config.capacity.max(1);
    engine.transport.set_limits(0, capacity as u64);
    let output: SharedWriter = Arc::new(Mutex::new(output));
    let pool = WorkerPool::spawn_with(
        Arc::clone(&engine),
        config.workers,
        capacity,
        config.supervisor.clone(),
        config.batch.clone(),
    );

    let mut received = 0u64;
    let mut overloaded = 0u64;
    let mut bad_lines = 0u64;
    let mut reader = LineReader::new(input, config.max_line_bytes);
    loop {
        if engine.transport.draining() {
            break;
        }
        match reader.next_line() {
            FramedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                received += 1;
                let job = Job {
                    line,
                    trace: TraceCtx::root(),
                    enqueued: Instant::now(),
                    out: Arc::clone(&output),
                    track: None,
                };
                if let Err(job) = pool.try_submit(&engine, job) {
                    // Shed under the request's own trace so the
                    // `serve.shed` event and flight dump correlate
                    // with this line.
                    let _trace = tpp_obs::trace::enter(job.trace);
                    let response = if is_shutdown_line(&job.line) {
                        engine.handle_line(&job.line)
                    } else if engine.transport.workers_dead() {
                        // A dead pool must never accept-and-starve:
                        // probes (`health`, `stats`) are answered inline
                        // so the caller sees `accepting: false`, and
                        // work requests get a terminal `overloaded`
                        // instead of queueing into a void.
                        match parse_request(&job.line) {
                            Ok(r) if matches!(r.op, Op::Health | Op::Stats | Op::Metrics) => {
                                engine.handle_line(&job.line)
                            }
                            _ => {
                                overloaded += 1;
                                engine.overloaded_response(&job.line)
                            }
                        }
                    } else {
                        overloaded += 1;
                        engine.overloaded_response(&job.line)
                    };
                    write_response(&output, &response);
                }
            }
            FramedLine::Overlong => {
                received += 1;
                bad_lines += 1;
                engine
                    .transport
                    .overlong_lines
                    .fetch_add(1, Ordering::Relaxed);
                tpp_obs::metrics().counter("serve.overlong_line").inc();
                let response = engine.framing_error_response(&format!(
                    "line exceeds {} byte cap",
                    config.max_line_bytes
                ));
                write_response(&output, &response);
            }
            FramedLine::InvalidUtf8 => {
                received += 1;
                bad_lines += 1;
                let response = engine.framing_error_response("line is not valid utf-8");
                write_response(&output, &response);
            }
            // A generic reader with a timeout just polls the drain flag.
            FramedLine::TimedOut => continue,
            FramedLine::Eof => break,
            FramedLine::Err(e) => {
                obs_event!(Level::Warn, "serve.read_error", error = e.to_string());
                break;
            }
        }
        if config.max_requests.is_some_and(|max| received >= max) {
            break;
        }
    }

    pool.shutdown();
    // Read after the pool drains: a shutdown job answered during the
    // drain still counts as a drained session.
    let drained = engine.transport.draining();
    obs_event!(
        Level::Info,
        "serve.session_done",
        received = received,
        overloaded = overloaded,
        bad_lines = bad_lines,
        drained = drained,
    );
    ServeSummary {
        received,
        answered: received,
        overloaded,
        bad_lines,
        drained,
    }
}

/// Poll interval for nonblocking accept loops — the latency bound on
/// noticing a drain request.
pub(crate) const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(5);

/// Serves connections on a Unix domain socket at `path`, one session
/// per connection (each with its own queue and workers).
///
/// `accept_limit` bounds how many connections are accepted before the
/// listener stops (`None` = forever); tests use it to terminate. A
/// `shutdown` request on any session also ends the listener: the
/// accept loop polls the drain flag. On clean exit the socket file is
/// **unlinked** — a stale socket no longer lingers until the next bind
/// — and a traced `serve.shutdown` event reports the drain counts.
pub fn serve_unix(
    engine: Arc<ServeEngine>,
    path: &std::path::Path,
    config: &ServerConfig,
    accept_limit: Option<usize>,
) -> std::io::Result<()> {
    // A stale socket file from a previous unclean run would fail the
    // bind (clean runs now unlink it on exit; crashes still leave one).
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    obs_event!(
        Level::Info,
        "serve.listening",
        socket = path.display().to_string(),
    );
    let mut sessions = Vec::new();
    let mut accepted = 0usize;
    loop {
        if engine.transport.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                accepted += 1;
                engine
                    .transport
                    .conns_accepted
                    .fetch_add(1, Ordering::Relaxed);
                stream.set_nonblocking(false)?;
                let reader = stream.try_clone()?;
                let engine = Arc::clone(&engine);
                let config = config.clone();
                sessions.push(std::thread::spawn(move || {
                    serve_lines(engine, reader, stream, &config);
                }));
                if accept_limit.is_some_and(|limit| accepted >= limit) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                obs_event!(Level::Warn, "serve.accept_error", error = e.to_string());
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    drop(listener);
    for s in sessions {
        let _ = s.join();
    }
    // Clean shutdown leaves no socket artifact behind.
    let _ = std::fs::remove_file(path);
    emit_shutdown(&engine, "unix", accepted as u64, accepted as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use std::io::BufRead;
    use tpp_obs::json::{parse, Json};

    fn run(
        input: &str,
        server: &ServerConfig,
        engine_config: ServeConfig,
    ) -> (ServeSummary, Vec<Json>) {
        run_bytes(input.as_bytes(), server, engine_config)
    }

    fn run_bytes(
        input: &[u8],
        server: &ServerConfig,
        engine_config: ServeConfig,
    ) -> (ServeSummary, Vec<Json>) {
        let engine = Arc::new(ServeEngine::new(engine_config));
        let out: Vec<u8> = Vec::new();
        let out = Arc::new(Mutex::new(std::io::Cursor::new(out)));
        // Wrap the shared cursor so we can read it back after the run.
        struct SharedOut(Arc<Mutex<std::io::Cursor<Vec<u8>>>>);
        impl Write for SharedOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let summary = serve_lines(
            Arc::clone(&engine),
            input,
            SharedOut(Arc::clone(&out)),
            server,
        );
        let bytes = out.lock().unwrap().get_ref().clone();
        let text = String::from_utf8(bytes).unwrap();
        let responses = text
            .lines()
            .map(|l| parse(l).unwrap_or_else(|e| panic!("invalid response {l:?}: {e}")))
            .collect();
        (summary, responses)
    }

    #[test]
    fn every_line_gets_a_response() {
        let input = concat!(
            "{\"op\":\"health\",\"id\":\"a\"}\n",
            "garbage\n",
            "{\"op\":\"stats\",\"id\":\"b\"}\n",
        );
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 3);
        assert_eq!(responses.len(), 3);
    }

    #[test]
    fn blank_lines_are_skipped_not_answered() {
        let input = "\n{\"op\":\"health\"}\n   \n";
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 1);
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn max_requests_bounds_the_session() {
        let input = "{\"op\":\"health\"}\n".repeat(10);
        let config = ServerConfig {
            max_requests: Some(4),
            ..ServerConfig::default()
        };
        let (summary, responses) = run(&input, &config, ServeConfig::default());
        assert_eq!(summary.received, 4);
        assert_eq!(responses.len(), 4);
    }

    #[test]
    fn overload_sheds_with_a_terminal_response() {
        // One slow worker, capacity 1, and stalls on the first requests
        // so the queue backs up while the reader races ahead.
        let chaos: crate::ChaosPlan = "stall@1:150,stall@2:150".parse().unwrap();
        let engine_config = ServeConfig {
            chaos,
            ..ServeConfig::default()
        };
        let server = ServerConfig {
            capacity: 1,
            workers: 1,
            ..ServerConfig::default()
        };
        let input = "{\"op\":\"health\"}\n".repeat(30);
        let (summary, responses) = run(&input, &server, engine_config);
        assert_eq!(summary.received, 30);
        assert_eq!(responses.len(), 30, "every request answered");
        let shed = responses
            .iter()
            .filter(|r| r.get("error").and_then(|e| e.as_str()) == Some("overloaded"))
            .count() as u64;
        assert_eq!(shed, summary.overloaded);
        assert!(shed > 0, "expected some load shedding");
    }

    #[test]
    fn overlong_line_gets_bad_request_and_session_survives() {
        let mut input = String::new();
        input.push_str(&"x".repeat(300));
        input.push('\n');
        input.push_str("{\"op\":\"health\",\"id\":\"after\"}\n");
        let server = ServerConfig {
            max_line_bytes: 128,
            ..ServerConfig::default()
        };
        let (summary, responses) = run(&input, &server, ServeConfig::default());
        assert_eq!(summary.received, 2);
        assert_eq!(summary.bad_lines, 1);
        assert_eq!(responses.len(), 2);
        let bad = responses
            .iter()
            .find(|r| r.get("ok") == Some(&Json::Bool(false)))
            .expect("a bad_request response");
        assert_eq!(bad.get("id"), Some(&Json::Null));
        assert!(bad
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("byte cap"));
        let after = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("after"))
            .expect("the follow-up request answered on the same session");
        assert_eq!(after.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn invalid_utf8_line_is_rejected_without_killing_the_session() {
        let mut input: Vec<u8> = vec![0xff, 0xfe, 0xfd, b'\n'];
        input.extend_from_slice(b"{\"op\":\"health\",\"id\":\"ok\"}\n");
        let (summary, responses) =
            run_bytes(&input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 2);
        assert_eq!(summary.bad_lines, 1);
        assert_eq!(responses.len(), 2, "both lines answered");
        assert!(responses
            .iter()
            .any(|r| r.get("id").and_then(Json::as_str) == Some("ok")));
    }

    #[test]
    fn crlf_terminated_requests_parse() {
        let input = "{\"op\":\"health\",\"id\":\"crlf\"}\r\n";
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 1);
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("crlf"));
    }

    #[test]
    fn shutdown_op_drains_the_session() {
        let input = concat!(
            "{\"op\":\"health\",\"id\":\"h\"}\n",
            "{\"op\":\"shutdown\",\"id\":\"s\"}\n",
            "{\"op\":\"health\",\"id\":\"late\"}\n",
        );
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        // The pre-drain requests are answered; once the drain flag is
        // observed the session stops reading (the `late` line may or
        // may not have been read before the worker flipped the flag —
        // but everything read is answered).
        assert!(summary.drained, "session must end drained");
        assert_eq!(summary.received, responses.len() as u64);
        let shutdown = responses
            .iter()
            .find(|r| r.get("op").and_then(Json::as_str) == Some("shutdown"))
            .expect("shutdown acknowledged");
        assert_eq!(shutdown.get("draining"), Some(&Json::Bool(true)));
    }

    /// A backed-up queue of same-key plan requests is dequeued as one
    /// batch: the single worker stalls on the leading request (chaos)
    /// while the reader enqueues four identical plans, then answers all
    /// four from one shared policy resolution.
    #[test]
    fn same_key_backlog_is_answered_as_one_batch() {
        let chaos: crate::ChaosPlan = "stall@1:200".parse().unwrap();
        let engine = Arc::new(ServeEngine::new(ServeConfig {
            chaos,
            ..ServeConfig::default()
        }));
        let server = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let mut input = String::from("{\"op\":\"health\",\"id\":\"stalled\"}\n");
        for i in 0..4 {
            input.push_str(&format!(
                "{{\"op\":\"plan\",\"dataset\":\"ds-ct\",\"episodes\":40,\"seed\":7,\"id\":\"b{i}\"}}\n"
            ));
        }
        let out = Arc::new(Mutex::new(std::io::Cursor::new(Vec::new())));
        struct SharedOut(Arc<Mutex<std::io::Cursor<Vec<u8>>>>);
        impl Write for SharedOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let summary = serve_lines(
            Arc::clone(&engine),
            input.as_bytes(),
            SharedOut(Arc::clone(&out)),
            &server,
        );
        assert_eq!(summary.received, 5);
        let bytes = out.lock().unwrap().get_ref().clone();
        let text = String::from_utf8(bytes).unwrap();
        let responses: Vec<Json> = text.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(responses.len(), 5, "every request answered");
        let batched: Vec<&Json> = responses
            .iter()
            .filter(|r| r.get("batched") == Some(&Json::Bool(true)))
            .collect();
        assert_eq!(batched.len(), 4, "all four plans answered from one batch");
        for r in &batched {
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(r.get("batch_size").and_then(Json::as_f64), Some(4.0));
        }
        let t = &engine.transport;
        assert_eq!(t.batches_formed.load(Ordering::Relaxed), 1);
        assert_eq!(t.batch_members.load(Ordering::Relaxed), 4);
        assert_eq!(
            t.amortized_loads.load(Ordering::Relaxed),
            3,
            "four members share one policy resolution"
        );
    }

    #[test]
    fn unix_socket_round_trip_and_cleanup() {
        let path = std::env::temp_dir().join(format!("tpp-serve-{}.sock", std::process::id()));
        let engine = Arc::new(ServeEngine::new(ServeConfig::default()));
        let server = ServerConfig::default();
        let listener = {
            let engine = Arc::clone(&engine);
            let path = path.clone();
            let server = server.clone();
            std::thread::spawn(move || serve_unix(engine, &path, &server, Some(1)))
        };
        // Wait for the socket to appear.
        let mut stream = None;
        for _ in 0..100 {
            if let Ok(s) = std::os::unix::net::UnixStream::connect(&path) {
                stream = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let mut stream = stream.expect("daemon socket never came up");
        stream
            .write_all(b"{\"op\":\"health\",\"id\":\"sock\"}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        std::io::BufReader::new(&stream)
            .read_line(&mut response)
            .unwrap();
        let v = parse(response.trim()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id").unwrap().as_str(), Some("sock"));
        listener.join().unwrap().unwrap();
        // Clean shutdown removes the socket artifact.
        assert!(
            !path.exists(),
            "socket file must be unlinked on clean shutdown"
        );
    }
}
