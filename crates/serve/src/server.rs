//! Transport: bounded queue, worker pool, stdin/stdout and Unix socket.
//!
//! [`serve_lines`] is the core loop, generic over any `BufRead` input
//! and `Write` output so the chaos tests can drive it with in-memory
//! buffers and the CLI can hand it stdin/stdout. Requests enter a
//! **bounded** queue ([`std::sync::mpsc::sync_channel`]); when it is
//! full the reader thread sheds the request immediately with an
//! `overloaded` response instead of buffering without limit — a slow
//! planner must surface as explicit back-pressure, not as unbounded
//! memory growth followed by an OOM kill.
//!
//! Responses from concurrent workers interleave in completion order;
//! each response is written under one lock acquisition so lines never
//! tear. Clients correlate via the echoed `id`.
//!
//! Every accepted line is stamped with a fresh root [`tpp_obs::TraceCtx`]
//! **at ingestion** and with its enqueue time. The worker that dequeues
//! it re-enters that context, so queue wait (`serve.queue_wait_us`
//! histogram, `serve.queue_depth` gauge), the whole engine path, and
//! even shed responses all share the request's `trace_id`.

use crate::engine::ServeEngine;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tpp_obs::{obs_event, Level, TraceCtx};

/// One queued request: the raw line plus the trace context minted at
/// ingestion and the enqueue timestamp for queue-wait accounting.
struct Job {
    line: String,
    trace: TraceCtx,
    enqueued: Instant,
}

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queue capacity; requests beyond it are shed as `overloaded`.
    pub capacity: usize,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Stop after this many input lines (`None` = until EOF). Used by
    /// tests and bounded smoke runs.
    pub max_requests: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 64,
            workers: 2,
            max_requests: None,
        }
    }
}

/// What a serving session did, for the exit summary and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Input lines read.
    pub received: u64,
    /// Responses written (sheds included) — must equal `received`.
    pub answered: u64,
    /// Requests shed by the bounded queue.
    pub overloaded: u64,
}

/// Writes one response line under the output lock.
fn write_response<W: Write>(out: &Mutex<W>, line: &str) {
    let mut out = out.lock().expect("output lock poisoned");
    // A dead output (client hung up) must not kill the daemon; drop the
    // response and keep draining so the queue empties.
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Serves newline-delimited requests from `input` to `output` until EOF
/// (or `max_requests`), answering every line exactly once.
pub fn serve_lines<R, W>(
    engine: Arc<ServeEngine>,
    input: R,
    output: W,
    config: &ServerConfig,
) -> ServeSummary
where
    R: std::io::Read,
    W: Write + Send + 'static,
{
    let workers = config.workers.max(1);
    let capacity = config.capacity.max(1);
    let output = Arc::new(Mutex::new(output));
    let (tx, rx): (SyncSender<Job>, Receiver<Job>) = std::sync::mpsc::sync_channel(capacity);
    let rx = Arc::new(Mutex::new(rx));
    // Shared with the reader (inc on enqueue) and the workers (dec on
    // dequeue); mirrored into the `serve.queue_depth` gauge.
    let depth = Arc::new(AtomicI64::new(0));

    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let output = Arc::clone(&output);
        let depth = Arc::clone(&depth);
        handles.push(std::thread::spawn(move || loop {
            // Hold the receiver lock only while dequeuing.
            let job = match rx.lock().expect("queue lock poisoned").recv() {
                Ok(job) => job,
                Err(_) => break, // sender dropped and queue drained
            };
            let d = depth.fetch_sub(1, Ordering::Relaxed) - 1;
            tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
            let wait_us = job.enqueued.elapsed().as_micros() as u64;
            tpp_obs::metrics()
                .histogram("serve.queue_wait_us")
                .record(wait_us);
            // The request's trace context spans the whole worker turn;
            // the closing `serve.job` event names the root span and
            // carries the end-to-end duration so reconstruction can
            // close it.
            let _trace = tpp_obs::trace::enter(job.trace);
            obs_event!(Level::Debug, "serve.dequeued", queue_wait_us = wait_us);
            let response = engine.handle_line(&job.line);
            write_response(&output, &response);
            obs_event!(
                Level::Debug,
                "serve.job",
                duration_us = job.enqueued.elapsed().as_micros() as u64,
                queue_wait_us = wait_us,
            );
        }));
    }

    let mut received = 0u64;
    let mut overloaded = 0u64;
    for line in BufReader::new(input).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        received += 1;
        let job = Job {
            line,
            trace: TraceCtx::root(),
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                tpp_obs::metrics().gauge("serve.queue_depth").set(d as f64);
            }
            Err(TrySendError::Full(job)) => {
                overloaded += 1;
                // Shed under the request's own trace so the `serve.shed`
                // event and flight dump correlate with this line.
                let _trace = tpp_obs::trace::enter(job.trace);
                let response = engine.overloaded_response(&job.line);
                write_response(&output, &response);
            }
            Err(TrySendError::Disconnected(_)) => break, // workers gone
        }
        if config.max_requests.is_some_and(|max| received >= max) {
            break;
        }
    }

    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    obs_event!(
        Level::Info,
        "serve.session_done",
        received = received,
        overloaded = overloaded,
    );
    ServeSummary {
        received,
        answered: received,
        overloaded,
    }
}

/// Serves connections on a Unix domain socket at `path`, one session
/// per connection (each with its own queue and workers).
///
/// `accept_limit` bounds how many connections are accepted before the
/// listener stops (`None` = forever); tests use it to terminate.
pub fn serve_unix(
    engine: Arc<ServeEngine>,
    path: &std::path::Path,
    config: &ServerConfig,
    accept_limit: Option<usize>,
) -> std::io::Result<()> {
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    obs_event!(
        Level::Info,
        "serve.listening",
        socket = path.display().to_string(),
    );
    let mut sessions = Vec::new();
    for (accepted, stream) in listener.incoming().enumerate() {
        let Ok(stream) = stream else { continue };
        let reader = stream.try_clone()?;
        let engine = Arc::clone(&engine);
        let config = config.clone();
        sessions.push(std::thread::spawn(move || {
            serve_lines(engine, reader, stream, &config);
        }));
        if accept_limit.is_some_and(|limit| accepted + 1 >= limit) {
            break;
        }
    }
    for s in sessions {
        let _ = s.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use tpp_obs::json::{parse, Json};

    fn run(
        input: &str,
        server: &ServerConfig,
        engine_config: ServeConfig,
    ) -> (ServeSummary, Vec<Json>) {
        let engine = Arc::new(ServeEngine::new(engine_config));
        let out: Vec<u8> = Vec::new();
        let out = Arc::new(Mutex::new(std::io::Cursor::new(out)));
        // Wrap the shared cursor so we can read it back after the run.
        struct SharedOut(Arc<Mutex<std::io::Cursor<Vec<u8>>>>);
        impl Write for SharedOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let summary = serve_lines(
            Arc::clone(&engine),
            input.as_bytes(),
            SharedOut(Arc::clone(&out)),
            server,
        );
        let bytes = out.lock().unwrap().get_ref().clone();
        let text = String::from_utf8(bytes).unwrap();
        let responses = text
            .lines()
            .map(|l| parse(l).unwrap_or_else(|e| panic!("invalid response {l:?}: {e}")))
            .collect();
        (summary, responses)
    }

    #[test]
    fn every_line_gets_a_response() {
        let input = concat!(
            "{\"op\":\"health\",\"id\":\"a\"}\n",
            "garbage\n",
            "{\"op\":\"stats\",\"id\":\"b\"}\n",
        );
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 3);
        assert_eq!(responses.len(), 3);
    }

    #[test]
    fn blank_lines_are_skipped_not_answered() {
        let input = "\n{\"op\":\"health\"}\n   \n";
        let (summary, responses) = run(input, &ServerConfig::default(), ServeConfig::default());
        assert_eq!(summary.received, 1);
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn max_requests_bounds_the_session() {
        let input = "{\"op\":\"health\"}\n".repeat(10);
        let config = ServerConfig {
            max_requests: Some(4),
            ..ServerConfig::default()
        };
        let (summary, responses) = run(&input, &config, ServeConfig::default());
        assert_eq!(summary.received, 4);
        assert_eq!(responses.len(), 4);
    }

    #[test]
    fn overload_sheds_with_a_terminal_response() {
        // One slow worker, capacity 1, and stalls on the first requests
        // so the queue backs up while the reader races ahead.
        let chaos: crate::ChaosPlan = "stall@1:150,stall@2:150".parse().unwrap();
        let engine_config = ServeConfig {
            chaos,
            ..ServeConfig::default()
        };
        let server = ServerConfig {
            capacity: 1,
            workers: 1,
            max_requests: None,
        };
        let input = "{\"op\":\"health\"}\n".repeat(30);
        let (summary, responses) = run(&input, &server, engine_config);
        assert_eq!(summary.received, 30);
        assert_eq!(responses.len(), 30, "every request answered");
        let shed = responses
            .iter()
            .filter(|r| r.get("error").and_then(|e| e.as_str()) == Some("overloaded"))
            .count() as u64;
        assert_eq!(shed, summary.overloaded);
        assert!(shed > 0, "expected some load shedding");
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("tpp-serve-{}.sock", std::process::id()));
        let engine = Arc::new(ServeEngine::new(ServeConfig::default()));
        let server = ServerConfig::default();
        let listener = {
            let engine = Arc::clone(&engine);
            let path = path.clone();
            let server = server.clone();
            std::thread::spawn(move || serve_unix(engine, &path, &server, Some(1)))
        };
        // Wait for the socket to appear.
        let mut stream = None;
        for _ in 0..100 {
            if let Ok(s) = std::os::unix::net::UnixStream::connect(&path) {
                stream = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let mut stream = stream.expect("daemon socket never came up");
        stream
            .write_all(b"{\"op\":\"health\",\"id\":\"sock\"}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        std::io::BufReader::new(&stream)
            .read_line(&mut response)
            .unwrap();
        let v = parse(response.trim()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id").unwrap().as_str(), Some("sock"));
        listener.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
