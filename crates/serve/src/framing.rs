//! Byte-level NDJSON framing with a per-line length cap.
//!
//! The stdio transport used to lean on [`std::io::BufRead::lines`],
//! which has two failure modes a hostile client can exploit: a line
//! with no newline grows the buffer without bound (one client balloons
//! the daemon's memory), and a single invalid-UTF-8 byte errors the
//! iterator and tore down the whole session. [`LineReader`] replaces it
//! with an explicit state machine:
//!
//! * lines may arrive split across **arbitrary read boundaries** — the
//!   reader buffers partial lines between reads;
//! * `\r\n` endings are accepted (the `\r` is stripped);
//! * a line longer than the cap is **discarded to its newline** and
//!   reported as [`FramedLine::Overlong`] — the connection survives and
//!   the discard loop itself never buffers more than one chunk;
//! * invalid UTF-8 is reported per line ([`FramedLine::InvalidUtf8`]),
//!   not per session;
//! * read timeouts (`WouldBlock`/`TimedOut` from a socket with a read
//!   timeout) surface as [`FramedLine::TimedOut`] so the caller can
//!   enforce idle deadlines and poll drain flags without dedicating a
//!   thread to every blocked read.

use std::io::Read;

/// One framing outcome from [`LineReader::next_line`].
#[derive(Debug)]
pub enum FramedLine {
    /// A complete line (newline stripped, trailing `\r` stripped).
    Line(String),
    /// A line exceeded the length cap; its bytes were discarded up to
    /// (and including) the terminating newline.
    Overlong,
    /// A complete line arrived but its bytes are not valid UTF-8.
    InvalidUtf8,
    /// The underlying read timed out with no complete line buffered.
    TimedOut,
    /// Clean end of stream (any final unterminated line is returned as
    /// [`FramedLine::Line`] first, like `BufRead::lines`).
    Eof,
    /// A non-timeout I/O error; the connection is unusable.
    Err(std::io::Error),
}

/// A capped line reader over any [`Read`].
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    /// Bytes of the current (incomplete) line, plus any read-ahead past
    /// the newline of the line last returned.
    buf: Vec<u8>,
    max_line_bytes: usize,
    /// In discard mode: the current line already blew the cap; bytes
    /// are dropped until its newline.
    discarding: bool,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a `max_line_bytes` cap (clamped to ≥ 1).
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            max_line_bytes: max_line_bytes.max(1),
            discarding: false,
            eof: false,
        }
    }

    /// Consumes buffered bytes up to the next newline, if one is there.
    fn take_buffered_line(&mut self) -> Option<FramedLine> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let rest = self.buf.split_off(nl + 1);
        self.buf.pop(); // the newline
        if self.buf.last() == Some(&b'\r') {
            self.buf.pop();
        }
        let line = std::mem::replace(&mut self.buf, rest);
        if self.discarding {
            self.discarding = false;
            return Some(FramedLine::Overlong);
        }
        // A whole overlong line can arrive inside one chunk, never
        // having tripped the incremental cap.
        if line.len() > self.max_line_bytes {
            return Some(FramedLine::Overlong);
        }
        match String::from_utf8(line) {
            Ok(s) => Some(FramedLine::Line(s)),
            Err(_) => Some(FramedLine::InvalidUtf8),
        }
    }

    /// Enforces the cap on the (still incomplete) current line. Only
    /// called when the buffer holds no newline — `take_buffered_line`
    /// runs first each iteration — so clearing cannot drop a line
    /// terminator, and the buffer never grows past cap + one chunk.
    fn enforce_cap(&mut self) {
        if self.buf.len() > self.max_line_bytes || (self.discarding && !self.buf.is_empty()) {
            self.buf.clear();
            self.discarding = true;
        }
    }

    /// Returns the next framed line (blocking up to the underlying
    /// reader's timeout, when it has one).
    pub fn next_line(&mut self) -> FramedLine {
        self.next_line_by(None)
    }

    /// Like [`next_line`](Self::next_line), but also returns
    /// [`FramedLine::TimedOut`] once `deadline` passes even while bytes
    /// keep arriving — a slow-loris client trickling one byte per read
    /// timeout would otherwise keep this loop alive forever without a
    /// complete line. The partial line stays buffered; the caller
    /// decides whether the deadline is fatal.
    pub fn next_line_by(&mut self, deadline: Option<std::time::Instant>) -> FramedLine {
        loop {
            if let Some(out) = self.take_buffered_line() {
                return out;
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return FramedLine::TimedOut;
            }
            self.enforce_cap();
            if self.eof {
                if self.discarding {
                    self.discarding = false;
                    self.buf.clear();
                    return FramedLine::Overlong;
                }
                if self.buf.is_empty() {
                    return FramedLine::Eof;
                }
                // Final unterminated line.
                let line = std::mem::take(&mut self.buf);
                if line.len() > self.max_line_bytes {
                    return FramedLine::Overlong;
                }
                return match String::from_utf8(line) {
                    Ok(s) => FramedLine::Line(s),
                    Err(_) => FramedLine::InvalidUtf8,
                };
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                // No cap enforcement here: the chunk may contain the
                // newline that ends a discarded line, and the loop's
                // next take_buffered_line must see it.
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return FramedLine::TimedOut;
                }
                Err(e) => return FramedLine::Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// A reader that yields its scripted chunks one at a time — the
    /// deterministic stand-in for arbitrary TCP read boundaries.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        next: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let Some(chunk) = self.chunks.get(self.next) else {
                return Ok(0);
            };
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next] = chunk[n..].to_vec();
            }
            Ok(n)
        }
    }

    fn chunked(chunks: &[&[u8]]) -> Chunked {
        Chunked {
            chunks: chunks.iter().map(|c| c.to_vec()).collect(),
            next: 0,
        }
    }

    fn expect_line(r: &mut LineReader<Chunked>, want: &str) {
        match r.next_line() {
            FramedLine::Line(s) => assert_eq!(s, want),
            other => panic!("expected line {want:?}, got {other:?}"),
        }
    }

    #[test]
    fn lines_split_across_read_boundaries_reassemble() {
        let mut r = LineReader::new(
            chunked(&[b"{\"op\":", b"\"health\"", b"}\nnext", b"\n"]),
            256,
        );
        expect_line(&mut r, "{\"op\":\"health\"}");
        expect_line(&mut r, "next");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn crlf_endings_are_stripped() {
        let mut r = LineReader::new(chunked(&[b"a\r\nb\nc\r\n"]), 256);
        expect_line(&mut r, "a");
        expect_line(&mut r, "b");
        expect_line(&mut r, "c");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn one_chunk_with_many_lines_yields_them_all() {
        let mut r = LineReader::new(chunked(&[b"1\n2\n3\n"]), 256);
        expect_line(&mut r, "1");
        expect_line(&mut r, "2");
        expect_line(&mut r, "3");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn overlong_lines_are_discarded_and_the_stream_survives() {
        let long = vec![b'x'; 100];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(chunked(&[&input]), 16);
        assert!(matches!(r.next_line(), FramedLine::Overlong));
        expect_line(&mut r, "ok");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn overlong_discard_spans_read_boundaries_without_buffering() {
        let mut r = LineReader::new(chunked(&[&[b'x'; 4096], &[b'x'; 4096], b"tail\nok\n"]), 64);
        assert!(matches!(r.next_line(), FramedLine::Overlong));
        expect_line(&mut r, "ok");
    }

    #[test]
    fn unterminated_final_line_is_returned_then_eof() {
        let mut r = LineReader::new(chunked(&[b"a\nlast"]), 256);
        expect_line(&mut r, "a");
        expect_line(&mut r, "last");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn unterminated_overlong_tail_reports_overlong_then_eof() {
        let mut r = LineReader::new(chunked(&[&[b'x'; 100]]), 16);
        assert!(matches!(r.next_line(), FramedLine::Overlong));
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn invalid_utf8_is_per_line_not_per_session() {
        let mut r = LineReader::new(chunked(&[b"\xff\xfe\n{\"op\":\"health\"}\n"]), 256);
        assert!(matches!(r.next_line(), FramedLine::InvalidUtf8));
        expect_line(&mut r, "{\"op\":\"health\"}");
        assert!(matches!(r.next_line(), FramedLine::Eof));
    }

    #[test]
    fn timeouts_surface_without_losing_the_partial_line() {
        struct TimesOutOnce {
            fired: bool,
            then: Chunked,
        }
        impl Read for TimesOutOnce {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.fired {
                    self.fired = true;
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow"));
                }
                self.then.read(buf)
            }
        }
        let mut r = LineReader::new(
            TimesOutOnce {
                fired: false,
                then: chunked(&[b"late\n"]),
            },
            256,
        );
        assert!(matches!(r.next_line(), FramedLine::TimedOut));
        match r.next_line() {
            FramedLine::Line(s) => assert_eq!(s, "late"),
            other => panic!("expected the late line, got {other:?}"),
        }
    }

    #[test]
    fn a_trickling_reader_cannot_outlive_the_deadline() {
        /// Always returns one byte and never completes a line — the
        /// slow-loris shape that defeats per-read timeouts.
        struct Trickle;
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                buf[0] = b'x';
                Ok(1)
            }
        }
        let mut r = LineReader::new(Trickle, 1 << 20);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(20);
        assert!(matches!(
            r.next_line_by(Some(deadline)),
            FramedLine::TimedOut
        ));
    }
}
