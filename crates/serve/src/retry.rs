//! Exponential backoff for transient store failures.
//!
//! The second rung of the fallback chain: when loading a checkpoint
//! fails with an error [`StoreError::is_retryable`] classifies as
//! transient (interrupted I/O, a torn read racing a writer's rename),
//! re-reading a moment later usually succeeds — whereas a checksum
//! mismatch will fail identically forever. `with_backoff` retries only
//! the former, with exponentially growing sleeps, and reports how many
//! retries it spent so responses can surface `retries: N`.

use std::time::Duration;
use tpp_core::Budget;
use tpp_store::StoreError;

/// Retry policy: attempt count and sleep schedule.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl BackoffPolicy {
    /// Serving default: 3 attempts, 10 ms → 20 ms sleeps. Short because
    /// the races it targets (mid-rotation torn reads) resolve in
    /// milliseconds, and a request deadline is burning while we wait.
    pub fn serving_default() -> Self {
        BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
        }
    }

    /// No retries at all (tests, or callers with their own loop).
    pub fn none() -> Self {
        BackoffPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The sleep before retry number `retry` (0-based), doubling from
    /// `base_delay` and capped at `max_delay`.
    ///
    /// Saturates rather than overflows: `checked_shl` returns `None`
    /// (not a saturated value) for shifts ≥ 32, and `Duration::mul`
    /// would panic long before that for large bases, so both steps pin
    /// to their maxima explicitly and the cap is applied last.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = match 1u32.checked_shl(retry) {
            Some(f) => f,
            None => return self.max_delay,
        };
        self.base_delay
            .checked_mul(factor)
            .unwrap_or(Duration::MAX)
            .min(self.max_delay)
    }
}

/// Runs `op`, retrying per `policy` while the error is transient.
///
/// Returns the final result plus the number of retries actually spent
/// (0 when the first attempt settled it). Permanent errors return
/// immediately — retrying a checksum mismatch just re-reads the same
/// poison.
pub fn with_backoff<T>(
    policy: &BackoffPolicy,
    op: impl FnMut() -> Result<T, StoreError>,
) -> (Result<T, StoreError>, u32) {
    with_backoff_budgeted(policy, None, op)
}

/// [`with_backoff`], capped by the request's remaining deadline.
///
/// A retry sleep the budget cannot afford is pure loss: the request
/// would wake already expired, and the EDA/partial fallback tiers —
/// which could still have answered in time — never get their turn. So
/// before each sleep this checks the budget and **abandons the retry
/// loop** (returning the transient error as final) when the budget is
/// already expired or the pending delay would not fit in the remaining
/// wall-clock. `budget: None` (or a budget without a deadline) behaves
/// exactly like [`with_backoff`].
pub fn with_backoff_budgeted<T>(
    policy: &BackoffPolicy,
    budget: Option<&Budget>,
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> (Result<T, StoreError>, u32) {
    let attempts = policy.max_attempts.max(1);
    let mut retries = 0;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) if e.is_retryable() && retries + 1 < attempts => {
                let delay = policy.delay_for(retries);
                if let Some(budget) = budget {
                    let affordable = !budget.expired()
                        && budget.remaining_time().map_or(true, |rem| rem > delay);
                    if !affordable {
                        tpp_obs::obs_event!(
                            tpp_obs::Level::Warn,
                            "serve.retry_abandoned",
                            retry = retries + 1,
                            delay_ms = delay.as_millis() as u64,
                            error = e.to_string(),
                        );
                        tpp_obs::metrics().counter("serve.retry_abandoned").inc();
                        return (Err(e), retries);
                    }
                }
                tpp_obs::obs_event!(
                    tpp_obs::Level::Warn,
                    "serve.retry",
                    retry = retries + 1,
                    error = e.to_string(),
                );
                tpp_obs::metrics().counter("serve.retry").inc();
                std::thread::sleep(delay);
                retries += 1;
            }
            Err(e) => return (Err(e), retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error, ErrorKind};

    fn transient() -> StoreError {
        StoreError::Io(Error::new(ErrorKind::Interrupted, "EINTR"))
    }

    #[test]
    fn succeeds_first_try_without_retrying() {
        let (r, retries) = with_backoff(&BackoffPolicy::serving_default(), || {
            Ok::<_, StoreError>(42)
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let mut calls = 0;
        let policy = BackoffPolicy {
            max_attempts: 5,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        let (r, retries) = with_backoff(&policy, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok("done")
            }
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let mut calls = 0;
        let (r, retries) = with_backoff(&BackoffPolicy::serving_default(), || {
            calls += 1;
            Err::<(), _>(StoreError::ChecksumMismatch)
        });
        assert!(matches!(r.unwrap_err(), StoreError::ChecksumMismatch));
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let mut calls = 0;
        let policy = BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        let (r, retries) = with_backoff(&policy, || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(r.is_err());
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn budget_cap_abandons_unaffordable_sleeps() {
        let policy = BackoffPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
        };
        // 10 ms of deadline cannot afford a 50 ms sleep: the transient
        // error comes back immediately, leaving the deadline for the
        // fallback tiers.
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(10));
        let mut calls = 0;
        let started = std::time::Instant::now();
        let (r, retries) = with_backoff_budgeted(&policy, Some(&budget), || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(r.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
        assert!(started.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn deadline_free_budget_retries_like_the_plain_loop() {
        let policy = BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        let budget = Budget::unlimited();
        let mut calls = 0;
        let (r, retries) = with_backoff_budgeted(&policy, Some(&budget), || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(r.is_err());
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn delays_double_and_cap() {
        let p = BackoffPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(10));
        assert_eq!(p.delay_for(1), Duration::from_millis(20));
        assert_eq!(p.delay_for(2), Duration::from_millis(35)); // capped
        assert_eq!(p.delay_for(31), Duration::from_millis(35));
        // Shift overflow saturates instead of panicking.
        assert_eq!(p.delay_for(40), Duration::from_millis(35));
    }

    #[test]
    fn extreme_delays_saturate_instead_of_panicking() {
        // A pathological base delay whose doubling overflows Duration
        // itself: the multiply saturates and the cap still wins.
        let p = BackoffPolicy {
            max_attempts: 64,
            base_delay: Duration::from_secs(u64::MAX / 2),
            max_delay: Duration::from_secs(30),
        };
        for retry in [0, 1, 2, 20, 31, 32, 63, u32::MAX] {
            assert!(p.delay_for(retry) <= Duration::from_secs(30));
        }
        // An uncapped policy (max_delay = MAX) must still not panic on
        // multiply overflow — it pins to Duration::MAX.
        let unbounded = BackoffPolicy {
            max_attempts: 64,
            base_delay: Duration::from_secs(u64::MAX / 2),
            max_delay: Duration::MAX,
        };
        assert_eq!(unbounded.delay_for(3), Duration::MAX);
    }
}
