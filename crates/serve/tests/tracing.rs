//! End-to-end observability contract: a mixed chaos storm through the
//! full transport must leave (a) a flight-recorder post-mortem for every
//! incident class, (b) a `metrics` response whose Prometheus text parses
//! and carries the queue-wait and per-phase histograms, and (c) enough
//! trace context to reconstruct a complete span tree for any sampled
//! request.
//!
//! Runs in its own integration-test binary because it installs global
//! sinks; the two tests share one `#[test]` body via sequential phases
//! so they cannot race on the process-wide sink registry.

use std::collections::BTreeSet;
use std::sync::Arc;
use tpp_obs::json::{parse, Json};
use tpp_serve::{serve_lines, ServeConfig, ServeEngine, ServerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpp-serve-trace-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct SharedOut(Arc<std::sync::Mutex<Vec<u8>>>);
impl std::io::Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Drives `input` through the full bounded-queue transport.
fn run_session(engine: &Arc<ServeEngine>, input: &str, server: &ServerConfig) -> Vec<String> {
    let out: Arc<std::sync::Mutex<Vec<u8>>> = Arc::default();
    serve_lines(
        Arc::clone(engine),
        input.as_bytes(),
        SharedOut(Arc::clone(&out)),
        server,
    );
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    text.lines().map(str::to_owned).collect()
}

/// Minimal Prometheus text-format validation: every non-comment line is
/// `name{labels} value` or `name value`, every `# TYPE` names a metric
/// that then appears, and histogram bucket counts are cumulative.
fn assert_prometheus_parses(text: &str) {
    let mut typed: BTreeSet<&str> = BTreeSet::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a metric");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind in {line:?}"
            );
            typed.insert(name);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        seen.insert(name.to_owned());
        // Cumulative bucket check within one histogram's bucket run.
        if let Some(le_start) = series.find("_bucket{le=") {
            let base = &series[..le_start];
            let count = value.parse::<f64>().unwrap() as u64;
            if let Some((prev_base, prev_count)) = &last_bucket {
                if prev_base == base {
                    assert!(
                        count >= *prev_count,
                        "non-cumulative buckets for {base}: {prev_count} then {count}"
                    );
                }
            }
            last_bucket = Some((base.to_owned(), count));
        } else {
            last_bucket = None;
        }
    }
    for name in typed {
        assert!(
            seen.iter().any(|s| s == name || s.starts_with(name)),
            "TYPE {name} has no samples"
        );
    }
}

#[test]
fn chaos_storm_leaves_flight_dumps_metrics_and_reconstructable_traces() {
    tpp_obs::trace::seed_ids(42);
    let collector = Arc::new(tpp_obs::CollectorSink::new());
    tpp_obs::add_sink(collector.clone());

    // ---- Phase 1: 40-request mixed storm (panics + stalls + corrupt +
    // deadline overruns) through the wide transport. No shedding here;
    // that is phase 2's job.
    let storm_flights = temp_dir("storm-flights");
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        default_deadline_ms: Some(2_000),
        chaos: "panic@3,stall@7:60,corrupt@11,panic@13,stall@17:60,panic@23"
            .parse()
            .unwrap(),
        flight_dir: Some(storm_flights.clone()),
        flight_capacity: 128,
        ..ServeConfig::default()
    }));
    let mut input = String::new();
    for i in 1..=40u32 {
        let line = match i % 5 {
            0 => r#"{"op":"health","id":"ID"}"#.to_owned(),
            1 => r#"{"op":"recommend","dataset":"ds-ct","id":"ID"}"#.to_owned(),
            2 => r#"{"op":"plan","dataset":"ds-ct","episodes":20,"id":"ID"}"#.to_owned(),
            // Zero-deadline plans force deadline-overrun flight dumps.
            3 => r#"{"op":"plan","dataset":"ds-ct","episodes":400,"deadline_ms":0,"id":"ID"}"#
                .to_owned(),
            _ => r#"{"op":"stats","id":"ID"}"#.to_owned(),
        };
        input.push_str(&line.replace("ID", &format!("q{i}")));
        input.push('\n');
    }
    let responses = run_session(
        &engine,
        &input,
        &ServerConfig {
            capacity: 64,
            workers: 4,
            max_requests: None,
            ..ServerConfig::default()
        },
    );
    assert_eq!(responses.len(), 40, "every storm request answered");
    for line in &responses {
        parse(line).unwrap_or_else(|e| panic!("invalid response {line:?}: {e}"));
    }

    // (a) Incident post-mortems: panic and deadline dumps from the storm.
    let storm_dumps: Vec<String> = std::fs::read_dir(&storm_flights)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        storm_dumps.iter().any(|f| f.contains("-panic-")),
        "no panic flight dump in {storm_dumps:?}"
    );
    assert!(
        storm_dumps.iter().any(|f| f.contains("-deadline-")),
        "no deadline flight dump in {storm_dumps:?}"
    );
    for f in &storm_dumps {
        let text = std::fs::read_to_string(storm_flights.join(f)).unwrap();
        assert!(!text.is_empty(), "{f} is empty");
        for line in text.lines() {
            parse(line).unwrap_or_else(|e| panic!("bad JSONL in {f}: {e}"));
        }
    }

    // (b) The `metrics` op through the same engine: Prometheus text
    // parses and carries the queue-wait plus per-phase histograms.
    let metrics_line = engine.handle_line(r#"{"op":"metrics","id":"m1"}"#);
    let metrics = parse(&metrics_line).unwrap();
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    let prom = metrics
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("metrics response carries prometheus text");
    assert_prometheus_parses(prom);
    for series in [
        "serve_queue_wait_us_bucket",
        "serve_phase_plan_us_bucket",
        "serve_phase_train_us_bucket",
        "serve_phase_serialize_us_bucket",
        "serve_op_plan_us_bucket",
        "serve_latency_ms",
        "serve_queue_depth",
    ] {
        assert!(prom.contains(series), "prometheus text lacks {series}");
    }
    // The JSON snapshot round-trips through from_snapshot.
    let registry = metrics.get("registry").expect("registry snapshot");
    let reconstructed = tpp_obs::Metrics::from_snapshot(registry).unwrap();
    assert!(reconstructed.render_json().contains("serve.queue_wait_us"));

    // The stats op summarizes the same histograms with percentiles.
    let stats = parse(&engine.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let queue_wait = stats.get("queue_wait_us").expect("queue_wait_us in stats");
    assert!(
        queue_wait.get("count").and_then(Json::as_f64).unwrap() >= 40.0,
        "queue-wait histogram counted every transported request"
    );
    for field in ["p50", "p95", "p99", "p999"] {
        assert!(queue_wait.get(field).is_some(), "stats lacks {field}");
    }
    assert!(stats
        .get("latency_us")
        .and_then(|l| l.get("plan"))
        .is_some());

    // ---- Phase 2: force shedding through a tiny queue so the shed
    // incident class also leaves a post-mortem.
    let shed_flights = temp_dir("shed-flights");
    let shed_engine = Arc::new(ServeEngine::new(ServeConfig {
        chaos: "stall@1:150,stall@2:150".parse().unwrap(),
        flight_dir: Some(shed_flights.clone()),
        ..ServeConfig::default()
    }));
    let shed_input = "{\"op\":\"health\"}\n".repeat(30);
    let shed_responses = run_session(
        &shed_engine,
        &shed_input,
        &ServerConfig {
            capacity: 1,
            workers: 1,
            max_requests: None,
            ..ServerConfig::default()
        },
    );
    assert_eq!(shed_responses.len(), 30);
    let shed = shed_responses
        .iter()
        .filter(|l| l.contains("\"overloaded\""))
        .count();
    assert!(shed > 0, "tiny queue under stalls must shed");
    let shed_dumps: Vec<String> = std::fs::read_dir(&shed_flights)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        shed_dumps.iter().any(|f| f.contains("-shed-")),
        "no shed flight dump in {shed_dumps:?}"
    );

    tpp_obs::clear_sinks();

    // (c) Reconstruct span trees from everything the collector saw and
    // sample a storm `plan` request: its tree must be complete — the
    // transport root (`serve.job`), the engine span (`serve.request`)
    // beneath it, and the queue-wait event stitched to the same trace.
    let lines = collector.lines();
    let trees = tpp_obs::trace::reconstruct_jsonl(lines.iter().map(String::as_str));
    assert!(
        trees.len() >= 70,
        "one trace per request, got {}",
        trees.len()
    );
    let sampled = trees
        .iter()
        .find(|t| {
            t.roots.iter().any(|root| {
                root.name == "serve.job"
                    && root.children.iter().any(|c| {
                        c.name == "serve.request"
                            && c.events.iter().any(|(_, e)| e == "serve.answered")
                            && !c.children.is_empty()
                    })
            })
        })
        .unwrap_or_else(|| panic!("no complete plan/recommend span tree reconstructed"));
    let root = sampled
        .roots
        .iter()
        .find(|r| r.name == "serve.job")
        .unwrap();
    assert!(
        root.events.iter().any(|(_, e)| e == "serve.dequeued"),
        "root span carries the queue-wait event: {root:?}"
    );
    assert!(sampled.span_count() >= 2, "{}", sampled.render_ascii());
    assert_eq!(
        sampled.orphan_events, 0,
        "every event of the sampled trace attaches to a span"
    );
    // Span ids are unique within the tree (parent/child links are real).
    fn collect_ids(n: &tpp_obs::trace::SpanNode, out: &mut Vec<u64>) {
        out.push(n.span_id);
        for c in &n.children {
            collect_ids(c, out);
        }
    }
    let mut ids = Vec::new();
    for r in &sampled.roots {
        collect_ids(r, &mut ids);
    }
    let unique: BTreeSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "span ids must not collide");

    let _ = std::fs::remove_dir_all(&storm_flights);
    let _ = std::fs::remove_dir_all(&shed_flights);
}
