//! Chaos integration suite: the daemon's availability contract under
//! injected faults.
//!
//! Each test drives a real `ServeEngine` (and in some cases the full
//! bounded-queue transport) with a deterministic [`ChaosPlan`] and
//! asserts the three serving invariants:
//!
//! 1. **N requests in, N terminal responses out** — panics, stalls,
//!    corruption and overload all produce responses, never silence.
//! 2. **The process never dies** — every fault is isolated.
//! 3. **Degradation is honest** — `tier` / `degraded` on each response
//!    match the fault that was injected.

use std::sync::Arc;
use tpp_obs::json::{parse, Json};
use tpp_rl::{QTable, TrainCheckpoint};
use tpp_serve::{serve_lines, ChaosPlan, ServeConfig, ServeEngine, ServerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpp-serve-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field {k:?} in {v:?}"))
}

fn str_of<'a>(v: &'a Json, k: &str) -> &'a str {
    get(v, k).as_str().unwrap()
}

/// Writes `n` checkpoint generations for the ds-ct dataset to `dir`.
fn seed_checkpoints(dir: &std::path::Path, n: u64) {
    let (instance, _) = tpp_serve::resolve_dataset("ds-ct").unwrap();
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, n.max(1) as usize);
    for episode in 1..=n {
        let ckpt = TrainCheckpoint {
            q: QTable::square(instance.catalog.len()),
            episode,
            sched_pos: episode,
            rng_state: [1, 2, 3, episode],
            visits: tpp_rl::VisitTable::empty(),
            returns: vec![0.0; episode as usize],
        };
        set.save(&ckpt).unwrap();
    }
}

fn handle(engine: &ServeEngine, line: &str) -> Json {
    let response = engine.handle_line(line);
    parse(&response).unwrap_or_else(|e| panic!("invalid response json {response:?}: {e}"))
}

#[test]
fn all_requests_answered_under_panic_injection() {
    let config = ServeConfig {
        chaos: "panic@2,panic@4".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let mut degraded = 0;
    for i in 1..=6 {
        let r = handle(
            &engine,
            &format!(r#"{{"op":"recommend","dataset":"ds-ct","id":"r{i}"}}"#),
        );
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "request {i}: {r:?}");
        assert_eq!(str_of(&r, "id"), format!("r{i}"));
        if get(&r, "degraded") == &Json::Bool(true)
            && matches!(get(&r, "fallbacks"), Json::Arr(f) if f.iter().any(
                |x| x.as_str().is_some_and(|s| s.contains("panicked"))))
        {
            degraded += 1;
        }
    }
    assert_eq!(degraded, 2, "both injected panics answered degraded");
    assert_eq!(
        engine
            .counters
            .panics
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
}

#[test]
fn stall_exhausts_the_deadline_but_still_answers() {
    let config = ServeConfig {
        chaos: "stall@1:120".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let r = handle(
        &engine,
        r#"{"op":"plan","dataset":"ds-ct","deadline_ms":40,"episodes":500}"#,
    );
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(get(&r, "deadline_expired"), &Json::Bool(true));
    assert_eq!(get(&r, "degraded"), &Json::Bool(true));
    // The stall ate the whole budget before training started.
    assert_eq!(get(&r, "episodes").as_f64(), Some(0.0));
    assert!(matches!(get(&r, "plan"), Json::Arr(items) if !items.is_empty()));
}

#[test]
fn corrupt_newest_generation_falls_back_to_the_older_one() {
    let dir = temp_dir("fallback-gen");
    seed_checkpoints(&dir, 2);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        chaos: "corrupt@1".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    // The loader skipped the corrupted generation and found the older
    // valid one — still the policy tier, not degraded.
    assert_eq!(str_of(&r, "tier"), "policy");
    assert_eq!(get(&r, "degraded"), &Json::Bool(false));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_generations_corrupt_degrades_to_eda() {
    let dir = temp_dir("all-corrupt");
    seed_checkpoints(&dir, 1);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        chaos: "corrupt@1".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(str_of(&r, "tier"), "eda");
    assert_eq!(get(&r, "degraded"), &Json::Bool(true));
    assert!(
        matches!(get(&r, "fallbacks"), Json::Arr(f) if !f.is_empty()),
        "response must say why it degraded: {r:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_checkpoints_serve_the_policy_tier() {
    let dir = temp_dir("healthy");
    seed_checkpoints(&dir, 1);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);
    assert_eq!(str_of(&r, "tier"), "policy");
    assert_eq!(get(&r, "degraded"), &Json::Bool(false));
    assert_eq!(get(&r, "retries").as_f64(), Some(0.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_fault_storm_answers_every_request() {
    // Panics, stalls and corruption interleaved across 40 requests
    // through the full transport (bounded queue + workers): every line
    // must come back, and the engine must survive to answer a final
    // health probe.
    let dir = temp_dir("storm");
    seed_checkpoints(&dir, 2);
    let chaos: ChaosPlan = "panic@3,stall@7:50,corrupt@11,panic@13,stall@17:50,panic@23"
        .parse()
        .unwrap();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        default_deadline_ms: Some(2_000),
        chaos,
        ..ServeConfig::default()
    }));
    let mut input = String::new();
    for i in 1..=40 {
        let op = match i % 4 {
            0 => r#"{"op":"health","id":"ID"}"#.to_owned(),
            1 => r#"{"op":"recommend","dataset":"ds-ct","id":"ID"}"#.to_owned(),
            2 => r#"{"op":"plan","dataset":"ds-ct","episodes":20,"id":"ID"}"#.to_owned(),
            _ => r#"{"op":"stats","id":"ID"}"#.to_owned(),
        };
        input.push_str(&op.replace("ID", &format!("q{i}")));
        input.push('\n');
    }
    let out: Arc<std::sync::Mutex<Vec<u8>>> = Arc::default();
    struct SharedOut(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let summary = serve_lines(
        Arc::clone(&engine),
        input.as_bytes(),
        SharedOut(Arc::clone(&out)),
        &ServerConfig {
            capacity: 64,
            workers: 4,
            max_requests: None,
            ..ServerConfig::default()
        },
    );
    assert_eq!(summary.received, 40);
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let responses: Vec<Json> = text.lines().map(|l| parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 40, "every request answered exactly once");
    // Every request id came back exactly once.
    let mut ids: Vec<&str> = responses.iter().map(|r| str_of(r, "id")).collect();
    ids.sort_unstable();
    let mut expected: Vec<String> = (1..=40).map(|i| format!("q{i}")).collect();
    expected.sort();
    assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
    // The engine is still alive and honest about what happened.
    let h = handle(&engine, r#"{"op":"stats"}"#);
    assert_eq!(get(&h, "ok"), &Json::Bool(true));
    assert_eq!(
        get(&h, "panics_isolated").as_f64(),
        Some(3.0),
        "all three injected panics were caught: {h:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stall_plus_flaky_load_still_answers_inside_the_deadline() {
    // Regression: the retry backoff used to sleep without consulting
    // the request budget, so a stall that had already eaten most of the
    // deadline left the retry loop sleeping through the rest — the
    // EDA/partial tiers never got their turn in time. Here the stall
    // burns ~80 ms of a 150 ms deadline and every checkpoint-load
    // attempt fails transiently under a backoff whose *first* sleep
    // (200 ms) no longer fits: the loop must abandon immediately
    // (retries: 0) and fall back to EDA with time to spare.
    let dir = temp_dir("stall-flaky");
    seed_checkpoints(&dir, 1);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        backoff: tpp_serve::BackoffPolicy {
            max_attempts: 6,
            base_delay: std::time::Duration::from_millis(200),
            max_delay: std::time::Duration::from_millis(2_000),
        },
        chaos: "stall@1:80,flaky@1".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let started = std::time::Instant::now();
    let r = handle(
        &engine,
        r#"{"op":"recommend","dataset":"ds-ct","deadline_ms":150,"id":"sf1"}"#,
    );
    let elapsed = started.elapsed();
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(str_of(&r, "id"), "sf1");
    assert_eq!(str_of(&r, "tier"), "eda");
    assert_eq!(get(&r, "degraded"), &Json::Bool(true));
    assert_eq!(
        get(&r, "retries").as_f64(),
        Some(0.0),
        "no retry sleep fits in the remaining budget: {r:?}"
    );
    assert!(
        matches!(get(&r, "fallbacks"), Json::Arr(f) if f.iter().any(
            |x| x.as_str().is_some_and(|s| s.contains("flaky")))),
        "the fallback reason names the transient load failure: {r:?}"
    );
    // An uncapped loop would sleep 200+400+800+1600+2000 ms on top of
    // the stall; the capped one answers in stall + fallback time.
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "answered in {elapsed:?}, so the backoff did not sleep past the deadline"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_store_errors_are_retried_into_success() {
    // A FaultFs that injects a transient error on the first read makes
    // load_latest fail once; the backoff loop must absorb it. Driven at
    // the retry API level because the engine pins RealFs.
    use tpp_serve::{with_backoff, BackoffPolicy};
    let mut failures = 2;
    let (result, retries) = with_backoff(
        &BackoffPolicy {
            max_attempts: 4,
            base_delay: std::time::Duration::ZERO,
            max_delay: std::time::Duration::ZERO,
        },
        || {
            if failures > 0 {
                failures -= 1;
                Err(tpp_store::StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "EINTR",
                )))
            } else {
                Ok("loaded")
            }
        },
    );
    assert_eq!(result.unwrap(), "loaded");
    assert_eq!(retries, 2);
}
