//! Regression suite for poisoned (non-finite) policy payloads.
//!
//! Before the decode-time gate in `tpp-store`, a checkpoint whose
//! Q-table carried NaN decoded "successfully" and the poison reached
//! the argmax, where `partial_cmp().expect(...)` killed the worker —
//! and K repeats quarantined the request key. The contract under test:
//!
//! 1. **A NaN checkpoint is a bad *artifact*, not a bad *request*** —
//!    the engine answers degraded (EDA tier), the process stays alive,
//!    and the quarantine records zero strikes, because the decoder
//!    rejects the table before any rollout touches it.
//! 2. **Rotation heals it** — with an older finite generation present,
//!    the loader skips the poisoned newest and serves the policy tier.
//! 3. **The rejection is permanent, not retried** — re-reading yields
//!    the same poison, so the backoff loop must not spend the deadline
//!    re-decoding it.

use tpp_obs::json::{parse, Json};
use tpp_rl::{QTable, TrainCheckpoint, VisitTable};
use tpp_serve::{ServeConfig, ServeEngine};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpp-serve-poison-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field {k:?} in {v:?}"))
}

fn str_of<'a>(v: &'a Json, k: &str) -> &'a str {
    match get(v, k) {
        Json::Str(s) => s,
        other => panic!("field {k:?} is not a string: {other:?}"),
    }
}

fn handle(engine: &ServeEngine, line: &str) -> Json {
    let response = engine.handle_line(line);
    parse(&response).unwrap_or_else(|e| panic!("invalid response json {response:?}: {e}"))
}

/// Saves one ds-ct checkpoint generation; `poison` plants a NaN in the
/// Q-table. The encoder writes it faithfully (checksum and all) — the
/// *decoder* is the gate under test.
fn save_generation(set: &tpp_store::CheckpointSet<'_>, episode: u64, poison: bool) {
    let (instance, _) = tpp_serve::resolve_dataset("ds-ct").unwrap();
    let mut q = QTable::square(instance.catalog.len());
    if poison {
        q.set(0, 0, f64::NAN);
    }
    set.save(&TrainCheckpoint {
        q,
        episode,
        sched_pos: episode,
        rng_state: [1, 2, 3, episode],
        visits: VisitTable::empty(),
        returns: vec![0.0; episode as usize],
    })
    .unwrap();
}

#[test]
fn nan_checkpoint_degrades_the_response_not_the_worker() {
    let dir = temp_dir("nan-only");
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, &dir, 1);
    save_generation(&set, 1, true);

    let engine = ServeEngine::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);

    // Alive and honest: a valid degraded response, not a panic.
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(str_of(&r, "tier"), "eda");
    assert_eq!(get(&r, "degraded"), &Json::Bool(true));
    assert!(
        matches!(get(&r, "fallbacks"), Json::Arr(f) if !f.is_empty()),
        "response must say why it degraded: {r:?}"
    );
    // The poison was rejected at decode, before any argmax ran, so no
    // panic was isolated and no quarantine strike was recorded.
    assert!(
        engine.quarantine.is_empty(),
        "a poisoned artifact must not strike the request key"
    );
    assert_eq!(engine.quarantine.added(), 0);

    // The engine is not wedged: the next request answers too.
    let r2 = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);
    assert_eq!(get(&r2, "ok"), &Json::Bool(true), "{r2:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nan_newest_generation_falls_back_to_finite_older_one() {
    let dir = temp_dir("nan-rotate");
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, &dir, 2);
    save_generation(&set, 1, false);
    save_generation(&set, 2, true);

    let engine = ServeEngine::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);

    // The loader skipped the poisoned newest generation and served the
    // finite one — full policy tier, nothing degraded.
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(str_of(&r, "tier"), "policy");
    assert_eq!(get(&r, "degraded"), &Json::Bool(false));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_finite_rejection_is_permanent_and_never_retried() {
    let dir = temp_dir("nan-noretry");
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, &dir, 1);
    save_generation(&set, 1, true);

    let engine = ServeEngine::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let r = handle(&engine, r#"{"op":"recommend","dataset":"ds-ct"}"#);

    assert_eq!(get(&r, "degraded"), &Json::Bool(true), "{r:?}");
    // Permanent store errors must not burn the deadline in backoff:
    // the response reports zero load retries.
    assert_eq!(get(&r, "retries").as_f64(), Some(0.0), "{r:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
