//! Integration suite for the policy cache and single-flight coalescing.
//!
//! Drives a real `ServeEngine` end to end and asserts the cache's
//! behavioural contract, not its internals: duplicate bursts cost one
//! training run, the byte bound evicts, checkpoint rotation invalidates
//! instead of serving stale policies, and a panicking leader never
//! wedges the followers that coalesced onto it.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Barrier};
use tpp_obs::json::{parse, Json};
use tpp_rl::{QTable, TrainCheckpoint};
use tpp_serve::{CacheConfig, ServeConfig, ServeEngine};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpp-serve-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field {k:?} in {v:?}"))
}

fn handle(engine: &ServeEngine, line: &str) -> Json {
    let response = engine.handle_line(line);
    parse(&response).unwrap_or_else(|e| panic!("invalid response json {response:?}: {e}"))
}

/// Writes `n` checkpoint generations for the ds-ct dataset to `dir`.
fn seed_checkpoints(dir: &std::path::Path, n: u64) {
    let (instance, _) = tpp_serve::resolve_dataset("ds-ct").unwrap();
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, n.max(1) as usize);
    for episode in 1..=n {
        let ckpt = TrainCheckpoint {
            q: QTable::square(instance.catalog.len()),
            episode,
            sched_pos: episode,
            rng_state: [1, 2, 3, episode],
            visits: tpp_rl::VisitTable::empty(),
            returns: vec![0.0; episode as usize],
        };
        set.save(&ckpt).unwrap();
    }
}

#[test]
fn concurrent_identical_requests_train_exactly_once() {
    let engine = Arc::new(ServeEngine::new(ServeConfig::default()));
    let line = r#"{"op":"plan","dataset":"ds-ct","episodes":300,"seed":7}"#;
    let n = 4;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                engine.handle_line(line)
            })
        })
        .collect();
    let responses: Vec<Json> = handles
        .into_iter()
        .map(|h| parse(&h.join().unwrap()).unwrap())
        .collect();

    let c = &engine.cache.counters;
    assert_eq!(
        c.misses.load(Relaxed),
        1,
        "one leader, therefore one training run"
    );
    assert_eq!(
        c.hits.load(Relaxed) + c.coalesced.load(Relaxed),
        (n - 1) as u64,
        "everyone else hit or coalesced"
    );
    // Shared policy ⇒ bit-identical answers across the burst.
    let plan0 = get(&responses[0], "plan");
    let score0 = get(&responses[0], "score").as_f64().unwrap();
    for r in &responses {
        assert_eq!(get(r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(get(r, "plan"), plan0);
        assert_eq!(
            get(r, "score").as_f64().unwrap().to_bits(),
            score0.to_bits()
        );
    }
}

#[test]
fn byte_bound_evicts_the_oldest_policy() {
    // ds-ct (31 items, ~7.7 KiB Q-table) and univ2 (36, ~10.4 KiB) each
    // fit a 12 KiB cache alone, not together.
    let config = ServeConfig {
        cache: CacheConfig {
            enabled: true,
            max_entries: 32,
            max_bytes: 12_000,
        },
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let ds_ct = r#"{"op":"plan","dataset":"ds-ct","episodes":5}"#;
    let univ2 = r#"{"op":"plan","dataset":"univ2","episodes":5}"#;

    assert_eq!(get(&handle(&engine, ds_ct), "ok"), &Json::Bool(true));
    assert_eq!(get(&handle(&engine, univ2), "ok"), &Json::Bool(true));
    let c = &engine.cache.counters;
    assert_eq!(c.evictions.load(Relaxed), 1, "univ2 pushed ds-ct out");
    let (entries, bytes) = engine.cache.usage();
    assert_eq!(entries, 1);
    assert!(bytes <= 12_000, "usage {bytes} exceeds the byte bound");
    // ds-ct is gone: asking again misses (and re-trains).
    let _ = handle(&engine, ds_ct);
    assert_eq!(c.misses.load(Relaxed), 3);
    assert_eq!(c.hits.load(Relaxed), 0);
}

#[test]
fn new_checkpoint_generation_invalidates_cached_policies() {
    let dir = temp_dir("gen-invalidate");
    seed_checkpoints(&dir, 1);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let line = r#"{"op":"recommend","dataset":"ds-ct"}"#;

    let r1 = handle(&engine, line);
    assert_eq!(get(&r1, "generation").as_f64(), Some(1.0), "{r1:?}");
    let r2 = handle(&engine, line);
    assert_eq!(get(&r2, "cached"), &Json::Bool(true), "{r2:?}");

    // Training publishes newer generations (the seeder appends, so the
    // newest becomes 3); the next request must observe the rotation,
    // drop the generation-1 entry, and serve the new policy.
    seed_checkpoints(&dir, 2);
    let r3 = handle(&engine, line);
    assert_eq!(get(&r3, "generation").as_f64(), Some(3.0), "{r3:?}");
    assert_eq!(get(&r3, "cached"), &Json::Bool(false), "{r3:?}");
    let c = &engine.cache.counters;
    assert!(
        c.invalidations.load(Relaxed) >= 1,
        "rotation must invalidate, got {c:?}"
    );
    // And the fresh policy is itself cacheable.
    let r4 = handle(&engine, line);
    assert_eq!(get(&r4, "cached"), &Json::Bool(true), "{r4:?}");
    assert_eq!(get(&r4, "generation").as_f64(), Some(3.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_falls_back_a_generation_instead_of_stale_hits() {
    let dir = temp_dir("corrupt-not-stale");
    seed_checkpoints(&dir, 2);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        chaos: "corrupt@2".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let line = r#"{"op":"recommend","dataset":"ds-ct"}"#;

    let r1 = handle(&engine, line);
    assert_eq!(get(&r1, "generation").as_f64(), Some(2.0), "{r1:?}");

    // Request 2: chaos flips bytes in generation 2 on disk first. The
    // cached generation-2 policy is now unbacked — the engine must
    // notice the changed on-disk state (the stamp token covers length
    // and mtime, so in-place rewrites count), invalidate, and load the
    // surviving generation 1 rather than serving the stale hit.
    let r2 = handle(&engine, line);
    assert_eq!(get(&r2, "ok"), &Json::Bool(true), "{r2:?}");
    assert_eq!(get(&r2, "generation").as_f64(), Some(1.0), "{r2:?}");
    assert_eq!(get(&r2, "cached"), &Json::Bool(false), "{r2:?}");
    let c = &engine.cache.counters;
    assert!(c.invalidations.load(Relaxed) >= 1, "{c:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_leader_never_wedges_followers() {
    // Chaos panics on the first request of a 4-way identical burst.
    // Whichever thread draws the fault answers degraded; the others
    // must all come back too — via their own training run, never a
    // hang on the dead leader's flight.
    let config = ServeConfig {
        chaos: "panic@1".parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = Arc::new(ServeEngine::new(config));
    let line = r#"{"op":"plan","dataset":"ds-ct","episodes":100,"id":"burst"}"#;
    let n = 4;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                engine.handle_line(line)
            })
        })
        .collect();
    for h in handles {
        let r = parse(&h.join().unwrap()).unwrap();
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert!(matches!(get(&r, "plan"), Json::Arr(p) if !p.is_empty()));
    }
    assert_eq!(engine.counters.panics.load(Relaxed), 1);
    // The engine (and its cache) is still healthy afterwards.
    let r = handle(&engine, line);
    assert_eq!(get(&r, "ok"), &Json::Bool(true));
}

#[test]
fn disabling_the_cache_disables_sharing_but_not_serving() {
    let config = ServeConfig {
        cache: CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let line = r#"{"op":"plan","dataset":"ds-ct","episodes":5,"seed":1}"#;
    let r1 = handle(&engine, line);
    let r2 = handle(&engine, line);
    for r in [&r1, &r2] {
        assert_eq!(get(r, "ok"), &Json::Bool(true));
        assert_eq!(get(r, "cached"), &Json::Bool(false));
    }
    // Determinism keeps answers identical even without sharing.
    assert_eq!(get(&r1, "plan"), get(&r2, "plan"));
    let c = &engine.cache.counters;
    assert_eq!(c.hits.load(Relaxed) + c.misses.load(Relaxed), 0);
    // Stats reports the cache as disabled.
    let s = handle(&engine, r#"{"op":"stats"}"#);
    assert_eq!(get(&s, "cache_enabled"), &Json::Bool(false));
}
