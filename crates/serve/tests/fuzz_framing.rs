//! Deterministic fuzz over the NDJSON framing layer.
//!
//! The daemon's framing contract: **whatever bytes arrive on a line,
//! exactly one well-formed JSON object goes back**, with an `id` member
//! that echoes the request's string `id` whenever the raw line parses
//! as a JSON object carrying one — and an explicit `"id": null` on the
//! shed / bad-request / panic paths otherwise. A seeded xorshift
//! generator makes the corpus reproducible: a failure prints the line
//! that caused it, and re-running replays the identical corpus.

use tpp_obs::json::{parse, Json};
use tpp_serve::{extract_raw_id, ServeConfig, ServeEngine};

/// xorshift64* — tiny, seeded, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn choice<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.below(items.len() as u64) as usize]
    }
}

/// One malformed (or occasionally valid) input line.
fn gen_line(rng: &mut Rng) -> String {
    match rng.below(10) {
        // Random printable garbage, sometimes with JSON-ish characters.
        0 => {
            let len = rng.below(40) as usize;
            (0..len)
                .map(|_| (b' ' + (rng.below(94) as u8)) as char)
                .collect()
        }
        // Truncated JSON objects.
        1 => {
            let full = format!(
                r#"{{"op":"plan","dataset":"ds-ct","id":"t{}"}}"#,
                rng.below(100)
            );
            let cut = 1 + rng.below(full.len() as u64 - 1) as usize;
            full.chars().take(cut).collect()
        }
        // Valid JSON, wrong shape (arrays, scalars, nested junk).
        2 => r#"[{"op":"plan"},2,3]"#.to_owned(),
        3 => format!("{}", rng.below(1_000_000)),
        4 => r#""just a string""#.to_owned(),
        // Valid object, invalid request (unknown op / bad field types),
        // with a recoverable string id.
        5 => format!(
            r#"{{"op":"{}","dataset":{},"id":"f{}"}}"#,
            rng.choice(&["detonate", "plan", "recommend", ""]),
            rng.choice(&["7", "null", "\"ds-ct\"", "[1]"]),
            rng.below(1000),
        ),
        // Valid object, non-string id (must come back as null).
        6 => format!(
            r#"{{"op":"plan","id":{}}}"#,
            rng.choice(&["42", "null", "[\"x\"]"])
        ),
        // Control characters and escapes mid-line.
        7 => format!("{{\"op\":\"plan\\u0000\",\"id\":\"c{}\"", rng.below(100)),
        // Empty / whitespace lines.
        8 => " ".repeat(rng.below(4) as usize),
        // Deep nesting to poke the parser's recursion handling.
        _ => {
            let depth = 2 + rng.below(60) as usize;
            let mut s = String::new();
            s.push_str(&"[".repeat(depth));
            s.push_str(&"]".repeat(depth));
            s
        }
    }
}

/// Asserts the framing contract for one response to `line`.
fn assert_framed(line: &str, response: &str, id_always_present: bool) {
    let v = parse(response)
        .unwrap_or_else(|e| panic!("response to {line:?} is not valid JSON ({e}): {response:?}"));
    assert!(
        matches!(v, Json::Obj(_)),
        "response to {line:?} is not an object: {response:?}"
    );
    assert!(
        matches!(v.get("ok"), Some(Json::Bool(_))),
        "response to {line:?} lacks a boolean ok: {response:?}"
    );
    let raw_id = extract_raw_id(line);
    match (raw_id, v.get("id")) {
        (Some(id), got) => assert_eq!(
            got.and_then(Json::as_str),
            Some(id.as_str()),
            "response to {line:?} must echo the recoverable id: {response:?}"
        ),
        (None, got) => {
            if id_always_present {
                assert_eq!(
                    got,
                    Some(&Json::Null),
                    "response to {line:?} must carry an explicit id: null: {response:?}"
                );
            } else if let Some(got) = got {
                assert_eq!(got, &Json::Null, "unexpected id in response to {line:?}");
            }
        }
    }
}

#[test]
fn malformed_lines_always_get_one_wellformed_response() {
    let engine = ServeEngine::new(ServeConfig::default());
    let mut rng = Rng(0x5EED_F00D_CAFE_0001);
    for i in 0..400 {
        let line = gen_line(&mut rng);
        let response = engine.handle_line(&line);
        assert!(
            !response.contains('\n'),
            "iteration {i}: response spans lines: {response:?}"
        );
        // handle_line covers bad_request (id: null / echoed) and, for
        // the few lines that parse into valid requests, real answers.
        assert_framed(&line, &response, false);
    }
}

#[test]
fn shed_responses_echo_recoverable_ids_or_explicit_null() {
    let engine = ServeEngine::new(ServeConfig::default());
    let mut rng = Rng(0xDEAD_BEEF_0000_0002);
    for _ in 0..400 {
        let line = gen_line(&mut rng);
        let response = engine.overloaded_response(&line);
        assert_framed(&line, &response, true);
        let v = parse(&response).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
    }
}

#[test]
fn panic_answers_echo_the_request_id() {
    // The panic-recovery path runs after parsing, so fuzz it with valid
    // requests — alternating with and without ids — and a chaos plan
    // that panics on every one of them.
    let spec: Vec<String> = (1..=20).map(|i| format!("panic@{i}")).collect();
    let config = ServeConfig {
        chaos: spec.join(",").parse().unwrap(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(config);
    let mut rng = Rng(0xABCD_EF01_2345_0003);
    for i in 0..20 {
        let line = match rng.below(4) {
            0 => format!(r#"{{"op":"health","id":"p{i}"}}"#),
            1 => format!(r#"{{"op":"recommend","dataset":"ds-ct","id":"p{i}"}}"#),
            2 => r#"{"op":"stats"}"#.to_owned(),
            _ => format!(r#"{{"op":"plan","dataset":"ds-ct","episodes":5,"id":"p{i}"}}"#),
        };
        let response = engine.handle_line(&line);
        // Health/stats panics are retried fault-free, so their normal
        // responses may omit the id; planning panics answer degraded.
        // Either way a string id must be echoed (assert_framed checks).
        assert_framed(&line, &response, false);
    }
    assert_eq!(
        engine
            .counters
            .panics
            .load(std::sync::atomic::Ordering::Relaxed),
        20
    );

    // A panicking planning request *without* an id answers through the
    // degraded path, which promises an explicit `id: null`.
    let engine = ServeEngine::new(ServeConfig {
        chaos: "panic@1".parse().unwrap(),
        ..ServeConfig::default()
    });
    let response = engine.handle_line(r#"{"op":"plan","dataset":"ds-ct","episodes":5}"#);
    let v = parse(&response).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{response:?}");
    assert_eq!(v.get("id"), Some(&Json::Null), "{response:?}");
    assert_eq!(v.get("degraded"), Some(&Json::Bool(true)), "{response:?}");
}

/// One TCP client's scripted traffic: the request lines, the raw byte
/// stream (mixed `\n`/`\r\n` endings), and the ids it planted.
fn gen_tcp_script(seed: u64, tag: u64) -> (Vec<String>, Vec<u8>) {
    let mut rng = Rng(seed);
    let mut lines = Vec::new();
    for i in 0..20u64 {
        let line = match rng.below(6) {
            0 => format!(r#"{{"op":"health","id":"h{tag}-{i}"}}"#),
            1 => r#"{"op":"stats"}"#.to_owned(),
            // Truncated JSON with a recoverable id: bad_request must
            // still echo it.
            2 => format!(r#"{{"id":"t{tag}-{i}","op":"pl"#),
            // Printable garbage.
            3 => {
                let len = rng.below(40) as usize;
                (0..len)
                    .map(|_| (b' ' + (rng.below(94) as u8)) as char)
                    .collect()
            }
            // Over the 512-byte cap: discarded, answered bad_request.
            4 => "x".repeat(560 + rng.below(600) as usize),
            _ => format!(r#"{{"op":"plan","dataset":"ds-ct","episodes":3,"id":"p{tag}-{i}"}}"#),
        };
        lines.push(line);
    }
    let mut bytes = Vec::new();
    for line in &lines {
        bytes.extend_from_slice(line.as_bytes());
        bytes.extend_from_slice(if rng.below(3) == 0 { b"\r\n" } else { b"\n" });
    }
    (lines, bytes)
}

/// The tentpole framing contract, proven over real sockets: concurrent
/// connections write a seeded corpus in arbitrary-sized partial chunks
/// (so lines split across read boundaries and connections interleave on
/// the shared pool), with CRLF endings and over-cap lines mixed in —
/// and every complete request gets exactly one terminal response, on
/// its own connection, echoing its id.
#[test]
fn tcp_corpus_one_terminal_response_per_request() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use tpp_serve::{TcpConfig, TcpServer};

    let engine = Arc::new(ServeEngine::new(ServeConfig::default()));
    let server = TcpServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TcpConfig {
            max_line_bytes: 512,
            read_timeout: std::time::Duration::from_millis(20),
            idle_timeout: std::time::Duration::from_secs(10),
            workers: 4,
            capacity: 256,
            ..TcpConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let server = std::thread::spawn(move || server.run());

    let mut clients = Vec::new();
    for c in 0..6u64 {
        clients.push(std::thread::spawn(move || {
            let (lines, bytes) = gen_tcp_script(0x7C9_0000 + c, c);
            let expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .unwrap();
            let mut write_half = stream.try_clone().expect("clone");
            let writer = std::thread::spawn(move || {
                let mut rng = Rng(0xABC0_0000 + c);
                let mut off = 0;
                while off < bytes.len() {
                    let n = (1 + rng.below(37) as usize).min(bytes.len() - off);
                    write_half.write_all(&bytes[off..off + n]).unwrap();
                    write_half.flush().unwrap();
                    off += n;
                    if rng.below(4) == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                write_half
                    .shutdown(std::net::Shutdown::Write)
                    .expect("half-close");
            });
            let mut responses = Vec::new();
            let mut reader = BufReader::new(stream);
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => responses.push(line.trim().to_string()),
                    Err(e) => panic!("client {c}: read failed: {e}"),
                }
            }
            writer.join().unwrap();
            (lines, responses, expected)
        }));
    }

    for (c, client) in clients.into_iter().enumerate() {
        let (lines, responses, expected) = client.join().expect("client thread");
        assert_eq!(
            responses.len(),
            expected,
            "client {c}: every complete request needs exactly one terminal response"
        );
        let planted: std::collections::HashSet<String> =
            lines.iter().filter_map(|l| extract_raw_id(l)).collect();
        let mut seen = std::collections::HashSet::new();
        for response in &responses {
            let v = parse(response).unwrap_or_else(|e| {
                panic!("client {c}: invalid response JSON ({e}): {response:?}")
            });
            assert!(
                matches!(v.get("ok"), Some(Json::Bool(_))),
                "client {c}: response lacks boolean ok: {response:?}"
            );
            if let Some(id) = v.get("id").and_then(Json::as_str) {
                assert!(
                    planted.contains(id),
                    "client {c}: response carries an id from another connection: {response:?}"
                );
                assert!(
                    seen.insert(id.to_string()),
                    "client {c}: id {id:?} answered twice"
                );
            }
        }
    }

    // Drain the daemon and check the server-side invariant.
    let mut stream = TcpStream::connect(addr).expect("drain connect");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let summary = server.join().expect("server thread");
    assert!(summary.drained);
    assert_eq!(
        summary.undeliverable_responses, 0,
        "no connection may die without a terminal response"
    );
}
