//! Self-healing integration suite: worker supervision, the poison-pill
//! quarantine, and the checkpoint-store circuit breaker.
//!
//! The invariants under test extend the chaos suite's availability
//! contract to faults that used to be fatal:
//!
//! 1. **A panic escaping per-request isolation kills one worker, not
//!    the daemon** — the in-flight request is rescued with a terminal
//!    response and the supervisor respawns the slot.
//! 2. **A daemon whose whole pool died never accepts-and-starves** —
//!    with no restart budget, `health` flips to `accepting: false`.
//! 3. **A wedged worker is replaced** — the stuck request still
//!    answers when it unsticks, but new requests stop waiting for it.
//! 4. **The store breaker trips on consecutive transient failures and
//!    recovers through a half-open probe.**
//! 5. **A request key that repeatedly panics is quarantined** — served
//!    degraded for a cooldown instead of being fed to more workers.

use std::io::Read;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tpp_obs::json::{parse, Json};
use tpp_rl::{QTable, TrainCheckpoint};
use tpp_serve::{
    serve_lines, BackoffPolicy, BreakerConfig, QuarantineConfig, ServeConfig, ServeEngine,
    ServerConfig, SupervisorConfig,
};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tpp-serve-supervise-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field {k:?} in {v:?}"))
}

/// Writes one valid checkpoint generation for ds-ct to `dir`.
fn seed_checkpoint(dir: &std::path::Path) {
    let (instance, _) = tpp_serve::resolve_dataset("ds-ct").unwrap();
    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, 1);
    set.save(&TrainCheckpoint {
        q: QTable::square(instance.catalog.len()),
        episode: 1,
        sched_pos: 1,
        rng_state: [1, 2, 3, 4],
        visits: tpp_rl::VisitTable::empty(),
        returns: vec![0.0],
    })
    .unwrap();
}

fn handle(engine: &ServeEngine, line: &str) -> Json {
    let response = engine.handle_line(line);
    parse(&response).unwrap_or_else(|e| panic!("invalid response json {response:?}: {e}"))
}

/// A blocking reader fed line-by-line from the test thread, so a test
/// can interleave "send a request" with "wait for the supervisor to
/// act" instead of racing a pre-baked byte buffer against it.
struct ChannelReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    fn pair() -> (Sender<Vec<u8>>, ChannelReader) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            tx,
            ChannelReader {
                rx,
                buf: Vec::new(),
                pos: 0,
            },
        )
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // sender dropped: EOF
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

struct SharedOut(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn responses_of(out: &Arc<Mutex<Vec<u8>>>) -> Vec<Json> {
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    text.lines().map(|l| parse(l).unwrap()).collect()
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn killed_worker_is_respawned_and_its_request_rescued() {
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        chaos: "kill@3".parse().unwrap(),
        ..ServeConfig::default()
    }));
    let (tx, reader) = ChannelReader::pair();
    let out: Arc<Mutex<Vec<u8>>> = Arc::default();
    let session = {
        let engine = Arc::clone(&engine);
        let out = SharedOut(Arc::clone(&out));
        std::thread::spawn(move || {
            serve_lines(
                engine,
                reader,
                out,
                &ServerConfig {
                    workers: 2,
                    supervisor: SupervisorConfig {
                        poll_interval: Duration::from_millis(5),
                        restart_backoff: Duration::from_millis(10),
                        ..SupervisorConfig::default()
                    },
                    ..ServerConfig::default()
                },
            )
        })
    };
    for i in 1..=8 {
        tx.send(format!("{{\"op\":\"health\",\"id\":\"h{i}\"}}\n").into_bytes())
            .unwrap();
    }
    // One of those eight dequeues hits kill@3 and takes its worker
    // down; the supervisor must notice the death and respawn the slot.
    wait_until("a worker respawn", Duration::from_secs(5), || {
        engine.transport.worker_restarts.load(Ordering::Relaxed) >= 1
    });
    tx.send(b"{\"op\":\"health\",\"id\":\"after\"}\n".to_vec())
        .unwrap();
    drop(tx);
    let summary = session.join().unwrap();

    assert_eq!(summary.received, 9);
    let responses = responses_of(&out);
    assert_eq!(responses.len(), 9, "every request answered exactly once");
    let rescued: Vec<&Json> = responses
        .iter()
        .filter(|r| r.get("rescued") == Some(&Json::Bool(true)))
        .collect();
    assert_eq!(
        rescued.len(),
        1,
        "the killed worker's in-flight request got a terminal rescue response"
    );
    assert_eq!(get(rescued[0], "ok"), &Json::Bool(false));
    // The post-respawn request was served by a live worker, not rescued.
    let after = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("after"))
        .expect("post-respawn request answered");
    assert_eq!(get(after, "ok"), &Json::Bool(true));
    assert_eq!(
        engine.transport.worker_deaths.load(Ordering::Relaxed),
        1,
        "exactly one worker died"
    );
    assert!(engine.transport.worker_restarts.load(Ordering::Relaxed) >= 1);
}

#[test]
fn dead_pool_without_restart_budget_stops_accepting_instead_of_starving() {
    // One worker, zero restart budget: after kill@1 the pool is dead
    // for good. The regression this guards: the daemon used to keep
    // queueing requests nobody would ever dequeue.
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        chaos: "kill@1".parse().unwrap(),
        ..ServeConfig::default()
    }));
    let (tx, reader) = ChannelReader::pair();
    let out: Arc<Mutex<Vec<u8>>> = Arc::default();
    let session = {
        let engine = Arc::clone(&engine);
        let out = SharedOut(Arc::clone(&out));
        std::thread::spawn(move || {
            serve_lines(
                engine,
                reader,
                out,
                &ServerConfig {
                    workers: 1,
                    supervisor: SupervisorConfig {
                        poll_interval: Duration::from_millis(5),
                        max_restarts: 0,
                        ..SupervisorConfig::default()
                    },
                    ..ServerConfig::default()
                },
            )
        })
    };
    tx.send(b"{\"op\":\"plan\",\"dataset\":\"ds-ct\",\"episodes\":5,\"id\":\"kill\"}\n".to_vec())
        .unwrap();
    // The supervisor notices the death, has no budget, and declares the
    // pool dead — which must flip readiness off.
    wait_until(
        "the pool to be declared dead",
        Duration::from_secs(5),
        || engine.transport.workers_dead(),
    );
    assert!(
        !engine.transport.accepting(),
        "a dead pool must not advertise readiness"
    );
    // A probe on the live session is answered inline (not queued into
    // the void) and tells the truth.
    tx.send(b"{\"op\":\"health\",\"id\":\"probe\"}\n".to_vec())
        .unwrap();
    wait_until("the inline health response", Duration::from_secs(5), || {
        responses_of(&out)
            .iter()
            .any(|r| r.get("id").and_then(Json::as_str) == Some("probe"))
    });
    drop(tx);
    let summary = session.join().unwrap();

    assert_eq!(summary.received, 2);
    let responses = responses_of(&out);
    assert_eq!(responses.len(), 2, "no request starved");
    let probe = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("probe"))
        .unwrap();
    assert_eq!(
        get(probe, "accepting"),
        &Json::Bool(false),
        "health on a dead pool reports not-accepting: {probe:?}"
    );
    assert_eq!(get(probe, "workers_alive").as_f64(), Some(0.0), "{probe:?}");
    // The killed request itself was rescued during the unwind.
    let killed = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("kill"))
        .unwrap();
    assert_eq!(get(killed, "rescued"), &Json::Bool(true));
}

#[test]
fn wedged_worker_is_replaced_and_the_stuck_request_still_answers() {
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        chaos: "wedge@1:400".parse().unwrap(),
        ..ServeConfig::default()
    }));
    let (tx, reader) = ChannelReader::pair();
    let out: Arc<Mutex<Vec<u8>>> = Arc::default();
    let session = {
        let engine = Arc::clone(&engine);
        let out = SharedOut(Arc::clone(&out));
        std::thread::spawn(move || {
            serve_lines(
                engine,
                reader,
                out,
                &ServerConfig {
                    workers: 1,
                    supervisor: SupervisorConfig {
                        poll_interval: Duration::from_millis(5),
                        wedge_budget: Some(Duration::from_millis(50)),
                        restart_backoff: Duration::from_millis(5),
                        ..SupervisorConfig::default()
                    },
                    ..ServerConfig::default()
                },
            )
        })
    };
    tx.send(b"{\"op\":\"recommend\",\"dataset\":\"ds-ct\",\"id\":\"stuck\"}\n".to_vec())
        .unwrap();
    // The lone worker wedges on request 1 for 400 ms, far past the
    // 50 ms budget: the supervisor must retire it and spawn a
    // replacement that picks up new work immediately.
    wait_until("the wedge replacement", Duration::from_secs(5), || {
        engine.transport.worker_wedged.load(Ordering::Relaxed) >= 1
            && engine.transport.worker_restarts.load(Ordering::Relaxed) >= 1
    });
    let replaced_at = Instant::now();
    tx.send(b"{\"op\":\"health\",\"id\":\"fresh\"}\n".to_vec())
        .unwrap();
    wait_until("the replacement to answer", Duration::from_secs(5), || {
        responses_of(&out)
            .iter()
            .any(|r| r.get("id").and_then(Json::as_str) == Some("fresh"))
    });
    // The fresh request must not have waited out the 400 ms wedge.
    assert!(
        replaced_at.elapsed() < Duration::from_millis(350),
        "the replacement worker answered while the wedged one was still stuck"
    );
    drop(tx);
    let summary = session.join().unwrap();

    assert_eq!(summary.received, 2);
    let responses = responses_of(&out);
    assert_eq!(responses.len(), 2, "the wedged request still answered");
    for id in ["stuck", "fresh"] {
        let r = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("missing response for {id}"));
        assert_eq!(get(r, "ok"), &Json::Bool(true), "{r:?}");
    }
    assert_eq!(engine.transport.worker_wedged.load(Ordering::Relaxed), 1);
    assert_eq!(
        engine.transport.worker_deaths.load(Ordering::Relaxed),
        0,
        "a wedge is a replacement, not a death"
    );
}

#[test]
fn breaker_trips_on_consecutive_failures_and_recovers_via_probe() {
    let dir = temp_dir("breaker");
    seed_checkpoint(&dir);
    let mut config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        // Flaky loads must fail fast so each request costs one breaker
        // failure, not a retry loop's worth of sleeps.
        backoff: BackoffPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        },
        breaker: BreakerConfig {
            enabled: true,
            failure_threshold: 2,
            cooldown: Duration::from_millis(60),
        },
        chaos: "flaky@1:2".parse().unwrap(),
        ..ServeConfig::default()
    };
    // Cache hits bypass the store entirely; the breaker only sees
    // traffic when every recommend actually loads.
    config.cache.enabled = false;
    let engine = ServeEngine::new(config);
    let line = r#"{"op":"recommend","dataset":"ds-ct","id":"rq"}"#;

    // Two consecutive transient failures: threshold reached, trips open.
    for i in 1..=2 {
        let r = handle(&engine, line);
        assert_eq!(get(&r, "tier").as_str(), Some("eda"), "request {i}: {r:?}");
    }
    assert_eq!(engine.breaker.state_name(), "open");
    assert_eq!(engine.breaker.opens(), 1);

    // While open, requests fast-fail to EDA without touching the store.
    let r = handle(&engine, line);
    assert_eq!(get(&r, "tier").as_str(), Some("eda"), "{r:?}");
    assert!(
        matches!(get(&r, "fallbacks"), Json::Arr(f) if f.iter().any(
            |x| x.as_str().is_some_and(|s| s.contains("breaker open")))),
        "the fast-fail names the breaker: {r:?}"
    );
    assert!(engine.breaker.fast_fails() >= 1);

    // After the cooldown the half-open probe runs a real load (the
    // flaky burst is spent), succeeds, and closes the breaker.
    std::thread::sleep(Duration::from_millis(80));
    let r = handle(&engine, line);
    assert_eq!(
        get(&r, "tier").as_str(),
        Some("policy"),
        "the probe's successful load serves the policy tier: {r:?}"
    );
    assert_eq!(engine.breaker.state_name(), "closed");
    assert_eq!(engine.breaker.closes(), 1);
    assert!(engine.breaker.probes() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_panics_quarantine_the_key_until_the_ttl_expires() {
    let engine = ServeEngine::new(ServeConfig {
        quarantine: QuarantineConfig {
            enabled: true,
            strikes: 2,
            cooldown: Duration::from_millis(200),
            max_entries: 16,
        },
        chaos: "panic@1,panic@2".parse().unwrap(),
        ..ServeConfig::default()
    });
    let line = r#"{"op":"recommend","dataset":"ds-ct","id":"pq"}"#;

    // Two panics on the identical key: both answered degraded, and the
    // second strike crosses the threshold.
    for i in 1..=2 {
        let r = handle(&engine, line);
        assert_eq!(get(&r, "ok"), &Json::Bool(true), "request {i}: {r:?}");
        assert_eq!(get(&r, "degraded"), &Json::Bool(true), "request {i}");
    }
    assert_eq!(engine.quarantine.len(), 1);

    // The identical request is now served from quarantine: degraded,
    // marked, and *without* running the primary tier again.
    let r = handle(&engine, line);
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert_eq!(get(&r, "quarantined"), &Json::Bool(true), "{r:?}");
    assert!(
        matches!(get(&r, "fallbacks"), Json::Arr(f) if f.iter().any(
            |x| x.as_str().is_some_and(|s| s.contains("quarantined")))),
        "{r:?}"
    );

    // A *different* key is unaffected.
    let other = handle(
        &engine,
        r#"{"op":"plan","dataset":"ds-ct","episodes":5,"seed":9,"id":"other"}"#,
    );
    assert_eq!(get(&other, "ok"), &Json::Bool(true));
    assert!(other.get("quarantined").is_none(), "{other:?}");

    // After the TTL the key is released and served normally again.
    std::thread::sleep(Duration::from_millis(250));
    let r = handle(&engine, line);
    assert_eq!(get(&r, "ok"), &Json::Bool(true), "{r:?}");
    assert!(r.get("quarantined").is_none(), "the TTL expired: {r:?}");
    assert_eq!(engine.quarantine.len(), 0);
}
