//! Integration tests for the TCP front end: admission control, slow
//! client defense, framing resilience on shared connections, and the
//! graceful drain protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpp_obs::json::{parse, Json};
use tpp_serve::{ServeConfig, ServeEngine, TcpConfig, TcpServer, TcpSummary};

fn spawn(
    engine_config: ServeConfig,
    tcp: TcpConfig,
) -> (SocketAddr, std::thread::JoinHandle<TcpSummary>) {
    let engine = Arc::new(ServeEngine::new(engine_config));
    let server = TcpServer::bind(engine, "127.0.0.1:0", tcp).expect("bind");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn fast_tcp() -> TcpConfig {
    TcpConfig {
        read_timeout: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(10),
        ..TcpConfig::default()
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    writeln!(stream, "{line}").expect("write");
    stream.flush().expect("flush");
}

fn read_json(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read");
    assert!(n > 0, "connection closed before a response arrived");
    parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// The acceptance-criteria drain test: a request already in flight
/// (stalled in a worker by chaos) completes with a real response,
/// while — during that same window — new connection attempts are
/// refused because the drain already closed the listener.
#[test]
fn graceful_drain_answers_in_flight_while_refusing_new_connects() {
    let chaos: tpp_serve::ChaosPlan = "stall@1:800".parse().unwrap();
    let (addr, server) = spawn(
        ServeConfig {
            chaos,
            ..ServeConfig::default()
        },
        TcpConfig {
            workers: 2,
            ..fast_tcp()
        },
    );

    // In-flight request: ordinal 1 stalls 800 ms inside its worker.
    let (mut slow_stream, mut slow_reader) = connect(addr);
    let t0 = Instant::now();
    send_line(&mut slow_stream, r#"{"op":"health","id":"inflight"}"#);
    // Give the worker a moment to dequeue it before the drain begins.
    std::thread::sleep(Duration::from_millis(100));

    // Begin the drain from a second connection; the ack proves the
    // flag flipped while the stalled request is still in flight.
    let (mut ctl_stream, mut ctl_reader) = connect(addr);
    send_line(&mut ctl_stream, r#"{"op":"shutdown","id":"drain"}"#);
    let ack = read_json(&mut ctl_reader);
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)), "{ack:?}");

    // While the stalled request is still being served, new connects
    // must start failing (the listener is closed within the accept
    // poll interval).
    let refused_at = loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => break Instant::now(),
            Ok(_) => {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "listener never refused new connects during the drain"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };

    // The in-flight request still gets its real answer after the
    // refusals began.
    let response = read_json(&mut slow_reader);
    let answered_at = Instant::now();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
    assert_eq!(
        response.get("id").and_then(Json::as_str),
        Some("inflight"),
        "{response:?}"
    );
    assert!(
        answered_at >= refused_at,
        "the stalled in-flight response must complete after new connects were already refused"
    );

    let summary = server.join().expect("server thread");
    assert!(summary.drained);
    assert_eq!(summary.undeliverable_responses, 0);
}

/// At the connection limit, a new connection is shed *before* session
/// admission: it gets an immediate `overloaded` echoing its request id,
/// then the socket closes.
#[test]
fn admission_shed_echoes_the_request_id_and_closes() {
    let (addr, server) = spawn(
        ServeConfig::default(),
        TcpConfig {
            max_connections: 1,
            ..fast_tcp()
        },
    );

    // Occupy the only admitted slot with an idle (but live) session.
    let (_hold_stream, _hold_reader) = connect(addr);
    std::thread::sleep(Duration::from_millis(50));

    let (mut shed_stream, mut shed_reader) = connect(addr);
    send_line(&mut shed_stream, r#"{"op":"health","id":"turned-away"}"#);
    let response = read_json(&mut shed_reader);
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response:?}");
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("overloaded"),
        "{response:?}"
    );
    assert_eq!(
        response.get("id").and_then(Json::as_str),
        Some("turned-away"),
        "shed responses must echo the id: {response:?}"
    );
    // The shed connection is closed after its one response.
    let mut rest = String::new();
    assert_eq!(shed_reader.read_line(&mut rest).unwrap(), 0);

    let (mut stream, mut reader) = connect(addr);
    send_line(&mut stream, r#"{"op":"shutdown"}"#);
    read_json(&mut reader); // even a shed connection can drain
    let summary = server.join().expect("server thread");
    assert!(summary.shed >= 1, "{summary:?}");
    assert_eq!(summary.undeliverable_responses, 0);
}

/// A slow-loris connection (bytes trickle, no complete line) is closed
/// at the idle timeout; well-behaved connections are untouched.
#[test]
fn slow_loris_is_timed_out_without_hurting_others() {
    let (addr, server) = spawn(
        ServeConfig::default(),
        TcpConfig {
            read_timeout: Duration::from_millis(20),
            idle_timeout: Duration::from_millis(150),
            ..TcpConfig::default()
        },
    );

    let (mut loris, mut loris_reader) = connect(addr);
    loris.write_all(b"{\"op\":\"hea").unwrap();
    loris.flush().unwrap();

    // A healthy client keeps completing lines well past the loris's
    // idle deadline.
    let (mut good, mut good_reader) = connect(addr);
    for i in 0..4 {
        send_line(&mut good, &format!(r#"{{"op":"health","id":"g{i}"}}"#));
        let response = read_json(&mut good_reader);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        std::thread::sleep(Duration::from_millis(60));
    }

    // The loris saw EOF: the server cut it off at the idle timeout.
    let mut buf = String::new();
    let n = loris_reader.read_line(&mut buf).expect("loris read");
    assert_eq!(n, 0, "slow-loris connection must be closed, got {buf:?}");

    send_line(&mut good, r#"{"op":"shutdown"}"#);
    read_json(&mut good_reader);
    let summary = server.join().expect("server thread");
    assert!(summary.timeouts >= 1, "{summary:?}");
    assert_eq!(summary.undeliverable_responses, 0);
}

/// Hostile framing on a shared connection — an over-cap line, invalid
/// UTF-8, a CRLF ending — each gets a terminal `bad_request`-style
/// response and the *same* connection keeps serving.
#[test]
fn framing_rejects_keep_the_connection_alive() {
    let (addr, server) = spawn(
        ServeConfig::default(),
        TcpConfig {
            max_line_bytes: 256,
            ..fast_tcp()
        },
    );

    let (mut stream, mut reader) = connect(addr);

    // Over-cap line: bad_request with explicit id: null.
    let long = format!("{}\n", "x".repeat(1000));
    stream.write_all(long.as_bytes()).unwrap();
    let response = read_json(&mut reader);
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response:?}");
    assert_eq!(response.get("id"), Some(&Json::Null), "{response:?}");
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("bad_request"),
        "{response:?}"
    );

    // Invalid UTF-8 line: rejected, connection survives.
    stream.write_all(&[0xff, 0xfe, 0xfd, b'\n']).unwrap();
    let response = read_json(&mut reader);
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response:?}");

    // CRLF-terminated request on the same battered connection.
    stream
        .write_all(b"{\"op\":\"health\",\"id\":\"still-here\"}\r\n")
        .unwrap();
    let response = read_json(&mut reader);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
    assert_eq!(
        response.get("id").and_then(Json::as_str),
        Some("still-here"),
        "{response:?}"
    );

    send_line(&mut stream, r#"{"op":"shutdown"}"#);
    read_json(&mut reader);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.undeliverable_responses, 0);
}

/// `health` is a readiness probe: `accepting: true` with connection
/// and queue numbers while serving, and the drain is observable in the
/// shutdown ack.
#[test]
fn health_reports_readiness_and_connection_counts() {
    let (addr, server) = spawn(ServeConfig::default(), fast_tcp());

    let (mut stream, mut reader) = connect(addr);
    send_line(&mut stream, r#"{"op":"health","id":"probe"}"#);
    let health = read_json(&mut reader);
    assert_eq!(
        health.get("accepting"),
        Some(&Json::Bool(true)),
        "{health:?}"
    );
    assert_eq!(
        health.get("draining"),
        Some(&Json::Bool(false)),
        "{health:?}"
    );
    assert_eq!(
        health.get("connections").and_then(Json::as_f64),
        Some(1.0),
        "{health:?}"
    );
    assert!(health.get("queue_depth").is_some(), "{health:?}");

    send_line(&mut stream, r#"{"op":"stats","id":"s"}"#);
    let stats = read_json(&mut reader);
    for key in [
        "accepting",
        "conns_accepted",
        "conns_shed",
        "conn_timeouts",
        "overlong_lines",
        "undeliverable_responses",
    ] {
        assert!(stats.get(key).is_some(), "stats lacks {key}: {stats:?}");
    }

    send_line(&mut stream, r#"{"op":"shutdown","id":"bye"}"#);
    let ack = read_json(&mut reader);
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)), "{ack:?}");
    let summary = server.join().expect("server thread");
    assert!(summary.drained);
}
