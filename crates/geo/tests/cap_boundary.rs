//! Regression suite for the `DEFAULT_CAP` boundary of the dense
//! distance matrix.
//!
//! Catalogs at or under [`DistanceMatrix::DEFAULT_CAP`] (1024) points
//! get the precomputed `n × n` matrix; anything larger falls back to
//! the one-row-at-a-time [`LazyRowCache`]. The two paths must be
//! *bit-identical* — the incremental-vs-naive equivalence suite and the
//! serving cache both compare scores by `f64::to_bits` — and the
//! fallback must rebuild a row at most once per origin, not once per
//! probe. These tests pin all of that at n = 1023 / 1024 / 1025.

use tpp_geo::{haversine_km, DistanceMatrix, GeoPoint, LazyRowCache};

/// `n` deterministic points spread over a Paris-sized box. No RNG: the
/// corpus must be identical on every run and platform.
fn synthetic_points(n: usize) -> Vec<GeoPoint> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            GeoPoint::new(
                48.80 + 0.10 * ((t * 0.37).sin().abs()),
                2.25 + 0.15 * ((t * 0.73).cos().abs()),
            )
        })
        .collect()
}

#[test]
fn cap_admits_1023_and_1024_but_not_1025() {
    assert_eq!(DistanceMatrix::DEFAULT_CAP, 1024);
    for n in [1023, 1024] {
        let pts = synthetic_points(n);
        let m = DistanceMatrix::build_capped(&pts, DistanceMatrix::DEFAULT_CAP)
            .unwrap_or_else(|| panic!("n = {n} must precompute the dense matrix"));
        assert_eq!(m.len(), n);
    }
    let pts = synthetic_points(1025);
    assert!(
        DistanceMatrix::build_capped(&pts, DistanceMatrix::DEFAULT_CAP).is_none(),
        "n = 1025 must fall back to lazy rows"
    );
}

#[test]
fn lazy_fallback_is_bit_identical_to_the_capped_matrix() {
    // At the largest still-capped size, every lazy leg must reproduce
    // the matrix entry bit for bit (both reduce to haversine_km on the
    // same inputs). Sampled origins keep the test fast while still
    // crossing the whole index range.
    let n = 1024;
    let pts = synthetic_points(n);
    let m = DistanceMatrix::build_capped(&pts, DistanceMatrix::DEFAULT_CAP).unwrap();
    let mut cache = LazyRowCache::new();
    for from in [0, 1, 511, 512, 1022, 1023] {
        for to in 0..n {
            assert_eq!(
                cache.leg(&pts, from, to).to_bits(),
                m.get(from, to).to_bits(),
                "leg ({from}, {to})"
            );
        }
    }
}

#[test]
fn over_cap_lazy_rows_match_direct_haversine() {
    // One past the cap there is no matrix to compare against, so pin
    // the fallback to the ground truth directly.
    let n = 1025;
    let pts = synthetic_points(n);
    let mut cache = LazyRowCache::new();
    for from in [0, 512, 1023, 1024] {
        for to in [0, 1, 513, 1024] {
            let expect = haversine_km(pts[from].lat, pts[from].lon, pts[to].lat, pts[to].lon);
            assert_eq!(
                cache.leg(&pts, from, to).to_bits(),
                expect.to_bits(),
                "leg ({from}, {to})"
            );
        }
    }
}

#[test]
fn fallback_rebuilds_at_most_once_per_origin_switch() {
    let n = 1025;
    let pts = synthetic_points(n);
    let mut cache = LazyRowCache::new();
    // A planning step probes many candidates from one origin: however
    // many probes, one rebuild.
    for to in 0..n {
        let _ = cache.leg(&pts, 7, to);
    }
    assert_eq!(cache.rebuilds(), 1, "one origin, many probes, one rebuild");
    // A walk that changes origin each step rebuilds once per step.
    for (step, from) in [9, 23, 101, 1024].into_iter().enumerate() {
        for to in [0, 3, 1024] {
            let _ = cache.leg(&pts, from, to);
        }
        assert_eq!(cache.rebuilds(), 2 + step as u64);
    }
}
