//! Property tests for the geographic substrate.

use proptest::prelude::*;
use tpp_geo::{haversine_km, BoundingBox, GeoPoint, GridIndex};

fn lat() -> impl Strategy<Value = f64> {
    -89.0f64..89.0
}

fn lon() -> impl Strategy<Value = f64> {
    -179.0f64..179.0
}

proptest! {
    /// Distance is non-negative, zero on identical points, symmetric.
    #[test]
    fn haversine_metric_basics(a1 in lat(), o1 in lon(), a2 in lat(), o2 in lon()) {
        let d = haversine_km(a1, o1, a2, o2);
        prop_assert!(d >= 0.0);
        prop_assert!(d.is_finite());
        let back = haversine_km(a2, o2, a1, o1);
        prop_assert!((d - back).abs() < 1e-9);
        prop_assert!(haversine_km(a1, o1, a1, o1) < 1e-9);
    }

    /// No two Earth points are farther apart than half the circumference.
    #[test]
    fn haversine_bounded_by_half_circumference(
        a1 in lat(), o1 in lon(), a2 in lat(), o2 in lon()
    ) {
        let d = haversine_km(a1, o1, a2, o2);
        prop_assert!(d <= std::f64::consts::PI * tpp_geo::point::EARTH_RADIUS_KM + 1e-6);
    }

    /// Triangle inequality (within numerical tolerance).
    #[test]
    fn haversine_triangle_inequality(
        a1 in lat(), o1 in lon(), a2 in lat(), o2 in lon(), a3 in lat(), o3 in lon()
    ) {
        let ab = haversine_km(a1, o1, a2, o2);
        let bc = haversine_km(a2, o2, a3, o3);
        let ac = haversine_km(a1, o1, a3, o3);
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    /// Bounding-box lerp always lands inside the box, and contains() is
    /// consistent with the corners.
    #[test]
    fn bbox_lerp_contained(u in 0.0f64..=1.0, v in 0.0f64..=1.0) {
        let b = BoundingBox::paris();
        let p = b.lerp(u, v);
        prop_assert!(b.contains(&p));
    }

    /// The grid index finds exactly the points a linear scan finds.
    #[test]
    fn grid_within_radius_matches_linear_scan(
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        qu in 0.0f64..1.0,
        qv in 0.0f64..1.0,
        radius in 1.0f64..80.0,
    ) {
        let bbox = BoundingBox::new(48.0, 2.0, 49.0, 3.0);
        let mut grid = GridIndex::new(bbox, 6);
        let pts: Vec<GeoPoint> = points
            .iter()
            .map(|&(u, v)| bbox.lerp(u, v))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            grid.insert(*p, i);
        }
        let q = bbox.lerp(qu, qv);
        let hits: Vec<usize> = grid.within_radius(&q, radius).iter().map(|(_, &i)| i).collect();
        let expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance_km(p) <= radius)
            .map(|(i, _)| i)
            .collect();
        let mut hits_sorted = hits.clone();
        hits_sorted.sort_unstable();
        prop_assert_eq!(hits_sorted, expected);
        // And the returned list is sorted nearest-first.
        let dists: Vec<f64> = grid.within_radius(&q, radius).iter().map(|(d, _)| *d).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}

proptest! {
    /// Pruned radius queries agree with a linear scan even when points
    /// sit exactly on cell boundaries, outside the box (clamped in), or
    /// the query point itself is out of the box.
    #[test]
    fn grid_pruning_safe_on_boundaries_and_outliers(
        points in prop::collection::vec((-0.3f64..1.3, -0.3f64..1.3), 1..50),
        qu in -0.5f64..1.5,
        qv in -0.5f64..1.5,
        radius in 0.1f64..150.0,
        cells in 1usize..12,
    ) {
        let bbox = BoundingBox::new(48.0, 2.0, 49.0, 3.0);
        let mut grid = GridIndex::new(bbox, cells);
        let pts: Vec<GeoPoint> = points
            .iter()
            .map(|&(u, v)| bbox.lerp(u, v)) // lerp extrapolates past the box for u,v outside [0,1]
            .collect();
        for (i, p) in pts.iter().enumerate() {
            grid.insert(*p, i);
        }
        let q = bbox.lerp(qu, qv);
        let mut hits: Vec<usize> =
            grid.within_radius(&q, radius).iter().map(|(_, &i)| i).collect();
        hits.sort_unstable();
        let expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance_km(p) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(hits, expected);
    }

    /// NaN coordinates never panic a query and never produce hits;
    /// finite points in the same index are still found.
    #[test]
    fn grid_nan_inputs_never_panic_or_match(
        u in 0.0f64..1.0,
        v in 0.0f64..1.0,
        radius in 0.1f64..100.0,
        poison_sel in 0u8..2,
    ) {
        let bbox = BoundingBox::new(48.0, 2.0, 49.0, 3.0);
        let mut grid = GridIndex::new(bbox, 5);
        let good = bbox.lerp(u, v);
        grid.insert(good, 0usize);
        let bad = if poison_sel == 0 {
            GeoPoint::new(f64::NAN, 2.5)
        } else {
            GeoPoint::new(48.5, f64::NAN)
        };
        grid.insert(bad, 1usize);
        prop_assert!(grid.try_insert(bad, 2usize).is_err());
        let hits = grid.within_radius(&good, radius);
        prop_assert!(hits.iter().all(|(_, &i)| i == 0));
        prop_assert_eq!(hits.len(), 1); // the good point itself
        prop_assert!(grid.within_radius(&bad, radius).is_empty());
    }
}
