//! A uniform grid spatial index over points in a bounding box.
//!
//! Used by the trip dataset generator (sample a plausible "next POI on the
//! same day" near the current one) and by feasibility checks. For ≤ ~120
//! POIs per city a fancy structure is pointless; a grid gives O(1) cell
//! lookup and small candidate lists with trivial code.

use crate::point::{BoundingBox, GeoPoint};

/// A uniform grid over a bounding box storing `(point, payload)` pairs.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bbox: BoundingBox,
    cells_per_axis: usize,
    /// Row-major cells, each a list of (point, payload).
    cells: Vec<Vec<(GeoPoint, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Creates an empty index with `cells_per_axis × cells_per_axis`
    /// cells over `bbox`.
    ///
    /// # Panics
    /// Panics when `cells_per_axis == 0`. Use [`GridIndex::try_new`]
    /// when the cell count comes from user input.
    pub fn new(bbox: BoundingBox, cells_per_axis: usize) -> Self {
        GridIndex::try_new(bbox, cells_per_axis).expect("grid needs at least one cell per axis")
    }

    /// Fallible constructor: `None` when `cells_per_axis == 0`, so a
    /// degenerate configuration (e.g. derived from an empty POI set)
    /// surfaces as a recoverable error rather than a panic.
    pub fn try_new(bbox: BoundingBox, cells_per_axis: usize) -> Option<Self> {
        if cells_per_axis == 0 {
            return None;
        }
        Some(GridIndex {
            bbox,
            cells_per_axis,
            cells: vec![Vec::new(); cells_per_axis * cells_per_axis],
            len: 0,
        })
    }

    /// Builds an index sized for the given points: bounding box from
    /// [`BoundingBox::from_points`], one cell per axis per ~sqrt of the
    /// point count (min 1). `None` on an empty point set.
    pub fn from_points(points: impl IntoIterator<Item = (GeoPoint, T)>) -> Option<Self> {
        let pts: Vec<(GeoPoint, T)> = points.into_iter().collect();
        let bbox = BoundingBox::from_points(pts.iter().map(|(p, _)| *p))?;
        let cells = ((pts.len() as f64).sqrt().ceil() as usize).max(1);
        let mut grid = GridIndex::try_new(bbox, cells)?;
        for (p, payload) in pts {
            grid.insert(p, payload);
        }
        Some(grid)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: &GeoPoint) -> usize {
        let n = self.cells_per_axis;
        let u = if self.bbox.max_lat > self.bbox.min_lat {
            (p.lat - self.bbox.min_lat) / (self.bbox.max_lat - self.bbox.min_lat)
        } else {
            0.0
        };
        let v = if self.bbox.max_lon > self.bbox.min_lon {
            (p.lon - self.bbox.min_lon) / (self.bbox.max_lon - self.bbox.min_lon)
        } else {
            0.0
        };
        let row = ((u * n as f64) as usize).min(n - 1);
        let col = ((v * n as f64) as usize).min(n - 1);
        row * n + col
    }

    /// Inserts a point (clamped into the box if slightly outside).
    pub fn insert(&mut self, p: GeoPoint, payload: T) {
        let idx = self.cell_of(&p);
        self.cells[idx].push((p, payload));
        self.len += 1;
    }

    /// All payloads within `radius_km` of `p`, with their distances,
    /// sorted nearest-first.
    pub fn within_radius(&self, p: &GeoPoint, radius_km: f64) -> Vec<(f64, &T)> {
        let mut out: Vec<(f64, &T)> = Vec::new();
        // Candidate cells: expand outward from p's cell far enough to
        // cover radius_km (conservatively scan all cells when the radius
        // spans the box — the datasets are tiny).
        for cell in &self.cells {
            for (q, payload) in cell {
                let d = p.distance_km(q);
                if d <= radius_km {
                    out.push((d, payload));
                }
            }
        }
        // total_cmp is panic-free even if a caller feeds NaN coordinates
        // (NaN distances sort last instead of aborting the process).
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The nearest payload to `p`, if any.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(f64, &T)> {
        let mut best: Option<(f64, &T)> = None;
        for cell in &self.cells {
            for (q, payload) in cell {
                let d = p.distance_km(q);
                if best.as_ref().map_or(true, |(bd, _)| d < *bd) {
                    best = Some((d, payload));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris_grid() -> GridIndex<&'static str> {
        let mut g = GridIndex::new(BoundingBox::paris(), 8);
        g.insert(GeoPoint::new(48.8584, 2.2945), "eiffel");
        g.insert(GeoPoint::new(48.8606, 2.3376), "louvre");
        g.insert(GeoPoint::new(48.8530, 2.3499), "notre-dame");
        g.insert(GeoPoint::new(48.8600, 2.3266), "orsay");
        g
    }

    #[test]
    fn insert_and_len() {
        let g = paris_grid();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn nearest_finds_closest() {
        let g = paris_grid();
        // A point next to the Louvre.
        let (d, who) = g.nearest(&GeoPoint::new(48.8610, 2.3380)).unwrap();
        assert_eq!(*who, "louvre");
        assert!(d < 0.1);
    }

    #[test]
    fn within_radius_sorted() {
        let g = paris_grid();
        let hits = g.within_radius(&GeoPoint::new(48.8606, 2.3376), 2.0);
        assert!(hits.len() >= 3);
        // Sorted nearest-first.
        for w in hits.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(*hits[0].1, "louvre");
    }

    #[test]
    fn within_radius_excludes_far() {
        let g = paris_grid();
        let hits = g.within_radius(&GeoPoint::new(48.8584, 2.2945), 0.5);
        assert_eq!(hits.len(), 1); // only the Eiffel Tower itself
    }

    #[test]
    fn empty_grid_nearest_none() {
        let g: GridIndex<u8> = GridIndex::new(BoundingBox::paris(), 4);
        assert!(g.nearest(&GeoPoint::new(48.86, 2.33)).is_none());
        assert!(g
            .within_radius(&GeoPoint::new(48.86, 2.33), 10.0)
            .is_empty());
    }

    #[test]
    fn try_new_rejects_zero_cells_without_panicking() {
        assert!(GridIndex::<u8>::try_new(BoundingBox::paris(), 0).is_none());
        assert!(GridIndex::<u8>::try_new(BoundingBox::paris(), 1).is_some());
    }

    #[test]
    fn from_points_on_empty_set_is_none() {
        let empty: Vec<(GeoPoint, u8)> = Vec::new();
        assert!(GridIndex::from_points(empty).is_none());
    }

    #[test]
    fn from_points_builds_a_queryable_index() {
        let g = GridIndex::from_points([
            (GeoPoint::new(48.8584, 2.2945), "eiffel"),
            (GeoPoint::new(48.8606, 2.3376), "louvre"),
            (GeoPoint::new(48.8530, 2.3499), "notre-dame"),
        ])
        .unwrap();
        assert_eq!(g.len(), 3);
        let (_, who) = g.nearest(&GeoPoint::new(48.8605, 2.3375)).unwrap();
        assert_eq!(*who, "louvre");
    }

    #[test]
    fn nan_coordinates_do_not_panic_queries() {
        let mut g = GridIndex::new(BoundingBox::paris(), 4);
        g.insert(GeoPoint::new(48.8584, 2.2945), "eiffel");
        g.insert(GeoPoint::new(f64::NAN, 2.33), "broken");
        // NaN distances must not abort the sort; real hits still come
        // back nearest-first.
        let hits = g.within_radius(&GeoPoint::new(48.8584, 2.2945), 5.0);
        assert_eq!(*hits[0].1, "eiffel");
    }

    #[test]
    fn points_outside_box_clamp_into_edge_cells() {
        let mut g = GridIndex::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 4);
        g.insert(GeoPoint::new(5.0, 5.0), "out");
        assert_eq!(g.len(), 1);
        assert!(g.nearest(&GeoPoint::new(1.0, 1.0)).is_some());
    }
}
