//! A uniform grid spatial index over points in a bounding box.
//!
//! Used by the trip dataset generator (sample a plausible "next POI on the
//! same day" near the current one) and by feasibility checks. For ≤ ~120
//! POIs per city a fancy structure is pointless; a grid gives O(1) cell
//! lookup and small candidate lists with trivial code.

use crate::point::{BoundingBox, GeoPoint};

/// Kilometres per degree of latitude — and of longitude at the equator
/// (scale by `cos(lat)` elsewhere). Deliberately *below* the true
/// minima (≈110.57 and ≈111.19 km/deg) so radius→degree conversions
/// that divide by it always over-cover: the pruned query window can
/// include extra cells but never miss one holding an in-radius point.
const CONSERVATIVE_KM_PER_DEG: f64 = 110.0;

/// Typed rejection for points the grid cannot place meaningfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// A coordinate is NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::NonFinite => write!(f, "point has a non-finite coordinate"),
        }
    }
}

impl std::error::Error for GridError {}

/// A uniform grid over a bounding box storing `(point, payload)` pairs.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bbox: BoundingBox,
    cells_per_axis: usize,
    /// Row-major cells, each a list of (point, payload).
    cells: Vec<Vec<(GeoPoint, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Creates an empty index with `cells_per_axis × cells_per_axis`
    /// cells over `bbox`.
    ///
    /// # Panics
    /// Panics when `cells_per_axis == 0`. Use [`GridIndex::try_new`]
    /// when the cell count comes from user input.
    pub fn new(bbox: BoundingBox, cells_per_axis: usize) -> Self {
        GridIndex::try_new(bbox, cells_per_axis).expect("grid needs at least one cell per axis")
    }

    /// Fallible constructor: `None` when `cells_per_axis == 0`, so a
    /// degenerate configuration (e.g. derived from an empty POI set)
    /// surfaces as a recoverable error rather than a panic.
    pub fn try_new(bbox: BoundingBox, cells_per_axis: usize) -> Option<Self> {
        if cells_per_axis == 0 {
            return None;
        }
        Some(GridIndex {
            bbox,
            cells_per_axis,
            cells: vec![Vec::new(); cells_per_axis * cells_per_axis],
            len: 0,
        })
    }

    /// Builds an index sized for the given points: bounding box from
    /// [`BoundingBox::from_points`], one cell per axis per ~sqrt of the
    /// point count (min 1). `None` on an empty point set.
    pub fn from_points(points: impl IntoIterator<Item = (GeoPoint, T)>) -> Option<Self> {
        let pts: Vec<(GeoPoint, T)> = points.into_iter().collect();
        let bbox = BoundingBox::from_points(pts.iter().map(|(p, _)| *p))?;
        let cells = ((pts.len() as f64).sqrt().ceil() as usize).max(1);
        let mut grid = GridIndex::try_new(bbox, cells)?;
        for (p, payload) in pts {
            grid.insert(p, payload);
        }
        Some(grid)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell index along one axis for coordinate `v` on `[min, max]`.
    ///
    /// Out-of-box coordinates **clamp** to the edge cells (documented
    /// behaviour: the generators jitter POIs slightly past city
    /// extents, and clamping is monotone, which is what the pruned
    /// radius query relies on). NaN maps to cell 0 — explicitly, not as
    /// a side effect of `as usize` saturation; callers that must reject
    /// NaN use [`GridIndex::try_insert`].
    fn axis_cell(v: f64, min: f64, max: f64, n: usize) -> usize {
        if v.is_nan() {
            return 0;
        }
        let u = if max > min {
            (v - min) / (max - min)
        } else {
            0.0
        };
        // `as usize` saturates negatives to 0 and +inf to usize::MAX;
        // the min() caps the high side.
        ((u * n as f64) as usize).min(n - 1)
    }

    fn cell_of(&self, p: &GeoPoint) -> usize {
        let n = self.cells_per_axis;
        let row = Self::axis_cell(p.lat, self.bbox.min_lat, self.bbox.max_lat, n);
        let col = Self::axis_cell(p.lon, self.bbox.min_lon, self.bbox.max_lon, n);
        row * n + col
    }

    /// Inserts a point. Finite out-of-box coordinates clamp into the
    /// edge cells; NaN coordinates land in cell 0 (and can never match
    /// a radius query, since their distances are NaN). Use
    /// [`GridIndex::try_insert`] to reject non-finite points instead.
    pub fn insert(&mut self, p: GeoPoint, payload: T) {
        let idx = self.cell_of(&p);
        self.cells[idx].push((p, payload));
        self.len += 1;
    }

    /// [`insert`](Self::insert) that rejects non-finite coordinates
    /// with a typed error instead of silently filing them in cell 0.
    pub fn try_insert(&mut self, p: GeoPoint, payload: T) -> Result<(), GridError> {
        if !p.lat.is_finite() || !p.lon.is_finite() {
            return Err(GridError::NonFinite);
        }
        self.insert(p, payload);
        Ok(())
    }

    /// All payloads within `radius_km` of `p`, with their distances,
    /// sorted nearest-first.
    ///
    /// Only the cell sub-rectangle covering `radius_km` around `p` is
    /// scanned (a conservative lat/lon degree window), so the query is
    /// sublinear on city-scale indexes instead of a full-catalog sweep.
    /// A non-finite query point or radius falls back to the full scan,
    /// which is still panic-free (NaN distances simply never match).
    pub fn within_radius(&self, p: &GeoPoint, radius_km: f64) -> Vec<(f64, &T)> {
        let mut out: Vec<(f64, &T)> = Vec::new();
        let cells = self.candidate_cells(p, radius_km);
        for &idx in &cells {
            for (q, payload) in &self.cells[idx] {
                let d = p.distance_km(q);
                if d <= radius_km {
                    out.push((d, payload));
                }
            }
        }
        // total_cmp is panic-free even if a caller feeds NaN coordinates
        // (NaN distances sort last instead of aborting the process).
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Indices of the cells that can contain a point within `radius_km`
    /// of `p`: the rows/cols spanned by a degree window that provably
    /// covers the radius. Monotone clamping in [`Self::axis_cell`] makes
    /// this correct for points clamped in from outside the box too.
    fn candidate_cells(&self, p: &GeoPoint, radius_km: f64) -> Vec<usize> {
        let n = self.cells_per_axis;
        if !p.lat.is_finite() || !p.lon.is_finite() || !radius_km.is_finite() {
            return (0..n * n).collect();
        }
        let dlat = radius_km / CONSERVATIVE_KM_PER_DEG;
        // Longitude degrees shrink with cos(lat); evaluate at the
        // largest absolute latitude the box or the search band reaches
        // so the window only ever over-covers.
        let band_lat = self
            .bbox
            .min_lat
            .abs()
            .max(self.bbox.max_lat.abs())
            .max(p.lat.abs() + dlat)
            .min(89.9);
        let dlon = radius_km / (CONSERVATIVE_KM_PER_DEG * band_lat.to_radians().cos().max(1e-6));
        let row_lo = Self::axis_cell(p.lat - dlat, self.bbox.min_lat, self.bbox.max_lat, n);
        let row_hi = Self::axis_cell(p.lat + dlat, self.bbox.min_lat, self.bbox.max_lat, n);
        let col_lo = Self::axis_cell(p.lon - dlon, self.bbox.min_lon, self.bbox.max_lon, n);
        let col_hi = Self::axis_cell(p.lon + dlon, self.bbox.min_lon, self.bbox.max_lon, n);
        let mut cells = Vec::with_capacity((row_hi - row_lo + 1) * (col_hi - col_lo + 1));
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                cells.push(row * n + col);
            }
        }
        cells
    }

    /// The nearest payload to `p`, if any.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(f64, &T)> {
        let mut best: Option<(f64, &T)> = None;
        for cell in &self.cells {
            for (q, payload) in cell {
                let d = p.distance_km(q);
                if best.as_ref().map_or(true, |(bd, _)| d < *bd) {
                    best = Some((d, payload));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris_grid() -> GridIndex<&'static str> {
        let mut g = GridIndex::new(BoundingBox::paris(), 8);
        g.insert(GeoPoint::new(48.8584, 2.2945), "eiffel");
        g.insert(GeoPoint::new(48.8606, 2.3376), "louvre");
        g.insert(GeoPoint::new(48.8530, 2.3499), "notre-dame");
        g.insert(GeoPoint::new(48.8600, 2.3266), "orsay");
        g
    }

    #[test]
    fn insert_and_len() {
        let g = paris_grid();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn nearest_finds_closest() {
        let g = paris_grid();
        // A point next to the Louvre.
        let (d, who) = g.nearest(&GeoPoint::new(48.8610, 2.3380)).unwrap();
        assert_eq!(*who, "louvre");
        assert!(d < 0.1);
    }

    #[test]
    fn within_radius_sorted() {
        let g = paris_grid();
        let hits = g.within_radius(&GeoPoint::new(48.8606, 2.3376), 2.0);
        assert!(hits.len() >= 3);
        // Sorted nearest-first.
        for w in hits.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(*hits[0].1, "louvre");
    }

    #[test]
    fn within_radius_excludes_far() {
        let g = paris_grid();
        let hits = g.within_radius(&GeoPoint::new(48.8584, 2.2945), 0.5);
        assert_eq!(hits.len(), 1); // only the Eiffel Tower itself
    }

    #[test]
    fn empty_grid_nearest_none() {
        let g: GridIndex<u8> = GridIndex::new(BoundingBox::paris(), 4);
        assert!(g.nearest(&GeoPoint::new(48.86, 2.33)).is_none());
        assert!(g
            .within_radius(&GeoPoint::new(48.86, 2.33), 10.0)
            .is_empty());
    }

    #[test]
    fn try_new_rejects_zero_cells_without_panicking() {
        assert!(GridIndex::<u8>::try_new(BoundingBox::paris(), 0).is_none());
        assert!(GridIndex::<u8>::try_new(BoundingBox::paris(), 1).is_some());
    }

    #[test]
    fn from_points_on_empty_set_is_none() {
        let empty: Vec<(GeoPoint, u8)> = Vec::new();
        assert!(GridIndex::from_points(empty).is_none());
    }

    #[test]
    fn from_points_builds_a_queryable_index() {
        let g = GridIndex::from_points([
            (GeoPoint::new(48.8584, 2.2945), "eiffel"),
            (GeoPoint::new(48.8606, 2.3376), "louvre"),
            (GeoPoint::new(48.8530, 2.3499), "notre-dame"),
        ])
        .unwrap();
        assert_eq!(g.len(), 3);
        let (_, who) = g.nearest(&GeoPoint::new(48.8605, 2.3375)).unwrap();
        assert_eq!(*who, "louvre");
    }

    #[test]
    fn nan_coordinates_do_not_panic_queries() {
        let mut g = GridIndex::new(BoundingBox::paris(), 4);
        g.insert(GeoPoint::new(48.8584, 2.2945), "eiffel");
        g.insert(GeoPoint::new(f64::NAN, 2.33), "broken");
        // NaN distances must not abort the sort; real hits still come
        // back nearest-first.
        let hits = g.within_radius(&GeoPoint::new(48.8584, 2.2945), 5.0);
        assert_eq!(*hits[0].1, "eiffel");
    }

    #[test]
    fn points_outside_box_clamp_into_edge_cells() {
        let mut g = GridIndex::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 4);
        g.insert(GeoPoint::new(5.0, 5.0), "out");
        assert_eq!(g.len(), 1);
        assert!(g.nearest(&GeoPoint::new(1.0, 1.0)).is_some());
        // A clamped-in point is still found by a pruned radius query
        // from a nearby in-box corner.
        let hits = g.within_radius(&GeoPoint::new(1.0, 1.0), 700.0);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn try_insert_rejects_non_finite() {
        let mut g = GridIndex::new(BoundingBox::paris(), 4);
        assert_eq!(
            g.try_insert(GeoPoint::new(f64::NAN, 2.33), "a"),
            Err(GridError::NonFinite)
        );
        assert_eq!(
            g.try_insert(GeoPoint::new(48.85, f64::INFINITY), "b"),
            Err(GridError::NonFinite)
        );
        assert!(g.try_insert(GeoPoint::new(48.85, 2.33), "c").is_ok());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn nan_query_point_falls_back_to_full_scan_without_matches() {
        let g = paris_grid();
        // NaN distances never satisfy `d <= radius`, so the result is
        // empty — but the call must not panic or miss the fallback.
        assert!(g
            .within_radius(&GeoPoint::new(f64::NAN, f64::NAN), 100.0)
            .is_empty());
        assert!(g
            .within_radius(&GeoPoint::new(48.86, 2.33), f64::NAN)
            .is_empty());
    }

    #[test]
    fn pruned_query_matches_full_scan_on_dense_grid() {
        // A deterministic lattice of points over a 32x32 grid: the
        // pruned window must return exactly what a full scan returns,
        // at radii spanning sub-cell to whole-box.
        let bbox = BoundingBox::new(40.0, -74.5, 41.0, -73.5);
        let mut g = GridIndex::new(bbox, 32);
        let mut pts = Vec::new();
        for i in 0..40u32 {
            for j in 0..40u32 {
                let p = bbox.lerp(f64::from(i) / 39.0, f64::from(j) / 39.0);
                g.insert(p, (i, j));
                pts.push(p);
            }
        }
        for radius in [0.3, 1.0, 5.0, 20.0, 500.0] {
            let q = bbox.lerp(0.37, 0.61);
            let hits = g.within_radius(&q, radius);
            let expected = pts.iter().filter(|p| q.distance_km(p) <= radius).count();
            assert_eq!(hits.len(), expected, "radius {radius}");
        }
    }
}
