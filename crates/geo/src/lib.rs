//! # tpp-geo
//!
//! Geographic substrate for the trip-planning instantiation of TPP:
//! great-circle (haversine) distances between POIs, bounding boxes for
//! city extents, and a uniform grid index for nearest-neighbour queries.
//!
//! The paper's trip datasets impose a **distance threshold** `d` on
//! itineraries (Tables VIII, XV) and its generators place POIs inside a
//! city's extent; both need geometry, and no geo crate is on the offline
//! list, so this is built from scratch.

#![warn(missing_docs)]

pub mod grid;
pub mod matrix;
pub mod point;

pub use grid::{GridError, GridIndex};
pub use matrix::{distance_row, DistanceMatrix, LazyRowCache};
pub use point::{haversine_km, BoundingBox, GeoPoint};
