//! Points, distances and bounding boxes on the WGS-84 sphere.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(self.lat, self.lon, other.lat, other.lon)
    }
}

/// Great-circle distance between two lat/lon pairs (degrees), in km,
/// via the haversine formula — numerically stable for the sub-city
/// distances trip planning deals in.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
}

/// An axis-aligned lat/lon box, used as a city extent by the POI
/// generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southernmost latitude.
    pub min_lat: f64,
    /// Westernmost longitude.
    pub min_lon: f64,
    /// Northernmost latitude.
    pub max_lat: f64,
    /// Easternmost longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a box; coordinates are normalized so min ≤ max.
    pub fn new(lat_a: f64, lon_a: f64, lat_b: f64, lon_b: f64) -> Self {
        BoundingBox {
            min_lat: lat_a.min(lat_b),
            min_lon: lon_a.min(lon_b),
            max_lat: lat_a.max(lat_b),
            max_lon: lon_a.max(lon_b),
        }
    }

    /// `true` when the point lies inside (inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat)
            && (self.min_lon..=self.max_lon).contains(&p.lon)
    }

    /// The box centre.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Linear interpolation into the box: `(u, v) ∈ [0,1]²` → point.
    pub fn lerp(&self, u: f64, v: f64) -> GeoPoint {
        GeoPoint::new(
            self.min_lat + (self.max_lat - self.min_lat) * u.clamp(0.0, 1.0),
            self.min_lon + (self.max_lon - self.min_lon) * v.clamp(0.0, 1.0),
        )
    }

    /// The tightest box covering `points`, or `None` when the iterator
    /// is empty or every coordinate is NaN. NaN coordinates are skipped
    /// rather than poisoning the min/max fold.
    pub fn from_points(points: impl IntoIterator<Item = GeoPoint>) -> Option<Self> {
        let mut bbox: Option<BoundingBox> = None;
        for p in points {
            if p.lat.is_nan() || p.lon.is_nan() {
                continue;
            }
            bbox = Some(match bbox {
                None => BoundingBox::new(p.lat, p.lon, p.lat, p.lon),
                Some(b) => BoundingBox {
                    min_lat: b.min_lat.min(p.lat),
                    min_lon: b.min_lon.min(p.lon),
                    max_lat: b.max_lat.max(p.lat),
                    max_lon: b.max_lon.max(p.lon),
                },
            });
        }
        bbox
    }

    /// Central-Paris extent used by the Paris POI generator.
    pub fn paris() -> Self {
        BoundingBox::new(48.815, 2.25, 48.902, 2.42)
    }

    /// Manhattan-and-surroundings extent used by the NYC POI generator.
    pub fn nyc() -> Self {
        BoundingBox::new(40.68, -74.02, 40.82, -73.93)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        assert_eq!(haversine_km(48.85, 2.35, 48.85, 2.35), 0.0);
    }

    #[test]
    fn known_distance_paris_landmarks() {
        // Eiffel Tower → Louvre ≈ 3.2 km.
        let d = haversine_km(48.8584, 2.2945, 48.8606, 2.3376);
        assert!((2.9..3.5).contains(&d), "got {d}");
    }

    #[test]
    fn known_distance_paris_to_nyc() {
        // ≈ 5837 km.
        let d = haversine_km(48.8566, 2.3522, 40.7128, -74.0060);
        assert!((5800.0..5900.0).contains(&d), "got {d}");
    }

    #[test]
    fn symmetry() {
        let a = haversine_km(48.86, 2.34, 40.71, -74.0);
        let b = haversine_km(40.71, -74.0, 48.86, 2.34);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn bbox_contains_and_center() {
        let b = BoundingBox::paris();
        assert!(b.contains(&GeoPoint::new(48.8584, 2.2945))); // Eiffel
        assert!(!b.contains(&GeoPoint::new(40.71, -74.0))); // NYC
        let c = b.center();
        assert!(b.contains(&c));
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BoundingBox::new(2.0, 5.0, 1.0, 4.0);
        assert_eq!(b.min_lat, 1.0);
        assert_eq!(b.max_lat, 2.0);
        assert_eq!(b.min_lon, 4.0);
        assert_eq!(b.max_lon, 5.0);
    }

    #[test]
    fn lerp_hits_corners_and_clamps() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(b.lerp(0.0, 0.0), GeoPoint::new(0.0, 0.0));
        assert_eq!(b.lerp(1.0, 1.0), GeoPoint::new(10.0, 20.0));
        assert_eq!(b.lerp(-1.0, 2.0), GeoPoint::new(0.0, 20.0));
    }

    #[test]
    fn from_points_covers_all_points() {
        let b = BoundingBox::from_points([
            GeoPoint::new(48.8584, 2.2945),
            GeoPoint::new(48.8606, 2.3376),
            GeoPoint::new(48.8530, 2.3499),
        ])
        .unwrap();
        assert_eq!(b.min_lat, 48.8530);
        assert_eq!(b.max_lat, 48.8606);
        assert_eq!(b.min_lon, 2.2945);
        assert_eq!(b.max_lon, 2.3499);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn from_points_skips_nan_coordinates() {
        // All-NaN input is as good as empty.
        assert!(BoundingBox::from_points([GeoPoint::new(f64::NAN, 2.0)]).is_none());
        // Mixed input ignores the NaN point instead of poisoning min/max.
        let b =
            BoundingBox::from_points([GeoPoint::new(f64::NAN, f64::NAN), GeoPoint::new(1.0, 2.0)])
                .unwrap();
        assert_eq!(b, BoundingBox::new(1.0, 2.0, 1.0, 2.0));
    }

    #[test]
    fn point_distance_method() {
        let a = GeoPoint::new(48.8584, 2.2945);
        let b = GeoPoint::new(48.8606, 2.3376);
        assert!((a.distance_km(&b) - haversine_km(a.lat, a.lon, b.lat, b.lon)).abs() < 1e-12);
    }
}
