//! Precomputed pairwise great-circle distances.
//!
//! Trip planning evaluates the distance threshold `d` once per candidate
//! POI per step; recomputing the haversine for every probe makes the
//! trig functions the hot path. A trip catalog is small (order 10²
//! POIs) and immutable, so the full `n × n` distance matrix is computed
//! once per instance and probed with a single indexed load afterwards —
//! the same "precompute the pairwise structure once per catalog" move
//! OMEGA-style recommenders apply to co-consumption counts.
//!
//! Catalogs above [`DistanceMatrix::DEFAULT_CAP`] items would make the
//! dense matrix memory-hungry (`n²` f64s); callers fall back to
//! caching one row at a time (see `tpp-core`'s environment).

use crate::point::{haversine_km, GeoPoint};

/// A dense symmetric `n × n` matrix of great-circle distances in km.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n * n` distances; `d[i * n + j]`.
    km: Vec<f64>,
}

impl DistanceMatrix {
    /// Largest point count for which [`DistanceMatrix::build_capped`]
    /// precomputes the dense matrix: 1024² f64s ≈ 8 MiB, far above any
    /// paper catalog (NYC 90, Paris 114) yet bounded for user-supplied
    /// ones.
    pub const DEFAULT_CAP: usize = 1024;

    /// Precomputes all pairwise distances. Work and memory are `O(n²)`;
    /// use [`DistanceMatrix::build_capped`] when `n` is unbounded input.
    pub fn build(points: &[GeoPoint]) -> Self {
        let n = points.len();
        let mut km = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = haversine_km(points[i].lat, points[i].lon, points[j].lat, points[j].lon);
                km[i * n + j] = d;
                km[j * n + i] = d;
            }
        }
        DistanceMatrix { n, km }
    }

    /// [`DistanceMatrix::build`] behind a size cap: `None` when `n > cap`
    /// (the caller should fall back to on-demand rows).
    pub fn build_capped(points: &[GeoPoint], cap: usize) -> Option<Self> {
        (points.len() <= cap).then(|| Self::build(points))
    }

    /// Number of points the matrix indexes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the empty matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` in km.
    ///
    /// # Panics
    /// If `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of {}",
            self.n
        );
        self.km[i * self.n + j]
    }

    /// The full row of distances from point `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.km[i * self.n..(i + 1) * self.n]
    }
}

/// Fills `row` with the distances from `points[from]` to every point —
/// the shared fallback used when the dense matrix is over cap. Writes
/// exactly `points.len()` entries (resizing `row` as needed).
pub fn distance_row(points: &[GeoPoint], from: usize, row: &mut Vec<f64>) {
    let p = points[from];
    row.clear();
    row.extend(
        points
            .iter()
            .map(|q| haversine_km(p.lat, p.lon, q.lat, q.lon)),
    );
}

/// The over-cap fallback as a self-contained cache: the distances from
/// one origin point, rebuilt (via [`distance_row`]) only when the
/// origin changes. Probing every candidate from the current item costs
/// one rebuild per origin switch — once per planning step, not once per
/// probe — and [`LazyRowCache::rebuilds`] exposes the count so tests
/// can assert exactly that instead of trusting a comment.
#[derive(Debug, Clone)]
pub struct LazyRowCache {
    /// Origin of the cached row; `usize::MAX` = nothing cached yet.
    from: usize,
    km: Vec<f64>,
    rebuilds: u64,
}

impl Default for LazyRowCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LazyRowCache {
    /// An empty cache (first probe rebuilds).
    pub fn new() -> Self {
        LazyRowCache {
            from: usize::MAX,
            km: Vec::new(),
            rebuilds: 0,
        }
    }

    /// Distance in km from `points[from]` to `points[to]`, serving from
    /// the cached row when `from` matches the cached origin. Produces
    /// the same f64 bits as [`DistanceMatrix::get`] over the same
    /// points (both delegate to [`haversine_km`]).
    ///
    /// # Panics
    /// If `from` or `to` is out of range, or `from == usize::MAX`
    /// (reserved as the empty sentinel).
    pub fn leg(&mut self, points: &[GeoPoint], from: usize, to: usize) -> f64 {
        assert!(from < points.len(), "from {from} out of {}", points.len());
        if self.from != from {
            distance_row(points, from, &mut self.km);
            self.from = from;
            self.rebuilds += 1;
        }
        self.km[to]
    }

    /// Number of row rebuilds since construction.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris_points() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(48.8584, 2.2945), // Eiffel
            GeoPoint::new(48.8606, 2.3376), // Louvre
            GeoPoint::new(48.8530, 2.3499), // Notre-Dame-ish
        ]
    }

    #[test]
    fn matches_haversine_exactly() {
        let pts = paris_points();
        let m = DistanceMatrix::build(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let expect = haversine_km(pts[i].lat, pts[i].lon, pts[j].lat, pts[j].lon);
                // Bit-identical: the matrix stores the very same f64 the
                // direct call produces (the incremental-engine golden
                // tests rely on this).
                assert_eq!(m.get(i, j).to_bits(), expect.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::build(&paris_points());
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn cap_gates_precompute() {
        let pts = paris_points();
        assert!(DistanceMatrix::build_capped(&pts, 3).is_some());
        assert!(DistanceMatrix::build_capped(&pts, 2).is_none());
    }

    #[test]
    fn row_view_matches_get() {
        let m = DistanceMatrix::build(&paris_points());
        for i in 0..3 {
            let row = m.row(i);
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, m.get(i, j));
            }
        }
    }

    #[test]
    fn distance_row_fallback_matches_matrix() {
        let pts = paris_points();
        let m = DistanceMatrix::build(&pts);
        let mut row = Vec::new();
        for i in 0..pts.len() {
            distance_row(&pts, i, &mut row);
            assert_eq!(row.as_slice(), m.row(i));
        }
    }

    #[test]
    fn lazy_row_cache_matches_matrix_and_counts_rebuilds() {
        let pts = paris_points();
        let m = DistanceMatrix::build(&pts);
        let mut cache = LazyRowCache::new();
        assert_eq!(cache.rebuilds(), 0);
        // Probing every destination from one origin costs one rebuild.
        for j in 0..pts.len() {
            assert_eq!(cache.leg(&pts, 0, j).to_bits(), m.get(0, j).to_bits());
        }
        assert_eq!(cache.rebuilds(), 1);
        // Switching origins rebuilds; returning to a prior origin does
        // too (single-row cache), but repeats never do.
        let _ = cache.leg(&pts, 1, 0);
        let _ = cache.leg(&pts, 1, 2);
        assert_eq!(cache.rebuilds(), 2);
        let _ = cache.leg(&pts, 0, 2);
        assert_eq!(cache.rebuilds(), 3);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::build(&[]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
