//! Property tests: every seed must yield structurally valid datasets.

use proptest::prelude::*;
use tpp_datagen::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Univ-1 program instances validate for arbitrary seeds and keep
    /// the paper's published statistics.
    #[test]
    fn univ1_valid_for_any_seed(seed in any::<u64>()) {
        for (inst, items, topics) in [
            (univ1_ds_ct(seed), 31usize, 60usize),
            (univ1_cyber(seed), 30, 61),
            (univ1_cs(seed), 32, 100),
        ] {
            inst.validate().unwrap();
            prop_assert_eq!(inst.catalog.len(), items);
            prop_assert_eq!(inst.catalog.vocabulary().len(), topics);
            prop_assert!(inst.catalog.primary_count() < inst.catalog.secondary_count());
            // Start course is always prerequisite-free.
            let start = inst.catalog.item(inst.default_start.unwrap());
            prop_assert!(start.prereq.is_none());
        }
    }

    /// Univ-2 instances validate for arbitrary seeds.
    #[test]
    fn univ2_valid_for_any_seed(seed in any::<u64>()) {
        let inst = univ2_ds(seed);
        inst.validate().unwrap();
        prop_assert_eq!(inst.catalog.len(), 36);
        prop_assert_eq!(inst.catalog.vocabulary().len(), 73);
        for item in inst.catalog.items() {
            prop_assert!(item.category.is_some());
        }
    }

    /// Synthetic instances validate across the config space.
    #[test]
    fn synthetic_valid_across_configs(
        n_items in 12usize..150,
        n_topics in 8usize..100,
        core_fraction in 0.15f64..0.6,
        prereq_density in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let config = SyntheticConfig {
            n_items,
            n_topics,
            core_fraction,
            prereq_density,
            n_primary: 4,
            n_secondary: 4,
            gap: 2,
        };
        let inst = synthetic_course_instance(&config, seed);
        inst.validate().unwrap();
        prop_assert_eq!(inst.catalog.len(), n_items);
        prop_assert!(inst.catalog.primary_count() >= 4);
    }
}

// Trip generation is expensive (thousands of itineraries); exercise a
// handful of seeds deterministically instead of via proptest.
#[test]
fn trips_valid_for_several_seeds() {
    for seed in [0u64, 1, 99, u64::MAX] {
        let d = nyc(seed);
        d.instance.validate().unwrap();
        assert_eq!(d.instance.catalog.len(), 90);
        assert_eq!(d.itineraries.len(), 2908);
        for item in d.instance.catalog.items() {
            let attrs = item.poi.expect("poi attrs");
            assert!((1.0..=5.0).contains(&attrs.popularity));
            // Popularity is half-star quantized.
            let doubled = attrs.popularity * 2.0;
            assert!((doubled - doubled.round()).abs() < 1e-9, "{}", item.code);
        }
    }
}

#[test]
fn all_program_prereqs_internally_consistent() {
    // Every antecedent referenced by any program course resolves inside
    // that program (build_prereq waives external ones).
    for inst in [univ1_ds_ct(1), univ1_cyber(1), univ1_cs(1), univ2_ds(1)] {
        for item in inst.catalog.items() {
            for dep in item.prereq.referenced_items() {
                assert!(
                    inst.catalog.get(dep).is_some(),
                    "{}: dangling antecedent",
                    item.code
                );
            }
        }
    }
}
