//! City-scale synthetic catalogs: 1k–100k POIs for stress-testing the
//! planner's sparse Q representation and grid-pruned action shortlists.
//!
//! The paper's NYC/Paris universes stop at ~100 POIs; a metro-area POI
//! dump is two to three orders of magnitude larger. This generator
//! produces such catalogs with the spatial statistics that make the
//! large-n fast paths meaningful:
//!
//! * **Clustered geography** — POIs concentrate in neighbourhood
//!   clusters (center + gaussian offset), so a radius query prunes most
//!   of the catalog instead of degenerating to a full scan.
//! * **Zipfian theme popularity** — a few themes dominate, the tail is
//!   thin, mirroring real place-category distributions.
//! * **Half-star popularity ratings** skewed low, quantized like real
//!   review data, with a small flagship set promoted to `Primary`.
//! * **Cluster-local restaurant antecedents** — restaurants require a
//!   museum/gallery from the *same* cluster (§II-B2's "museum before
//!   restaurant", kept local so prerequisite chains never force a
//!   cross-town leg that the distance threshold would reject).
//!
//! Every instance embeds one **known-feasible gold plan**: five
//! hand-placed items walking cluster 0 in template order (`PSPSS`),
//! 1 h each, a few hundred metres apart, pairwise theme-distinct and
//! antecedent-free. The generator re-checks the plan against the hard
//! constraints with a self-contained walk (this crate deliberately does
//! not depend on the planner), so "the dataset is solvable" is a
//! construction invariant, not a hope — and end-to-end tests can assert
//! a positive score for it without searching.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_geo::BoundingBox;
use tpp_model::{
    Catalog, HardConstraints, Item, ItemId, ItemKind, Plan, PlanningInstance, PoiAttrs, PrereqExpr,
    SoftConstraints, TemplateSet, TopicVector, TopicVocabulary, TripConstraints,
};

/// The 24-theme city vocabulary. Museum/gallery/restaurant are
/// load-bearing (antecedent logic); the rest shape the zipfian tail.
pub const CITY_THEMES: [&str; 24] = [
    "restaurant",
    "museum",
    "park",
    "cafe",
    "shopping",
    "monument",
    "gallery",
    "church",
    "theater",
    "market",
    "bridge",
    "viewpoint",
    "zoo",
    "aquarium",
    "library",
    "stadium",
    "garden",
    "palace",
    "cinema",
    "nightlife",
    "spa",
    "waterfront",
    "castle",
    "observatory",
];

/// A city-scale dataset: the instance plus its known-feasible gold plan.
#[derive(Debug, Clone)]
pub struct CityDataset {
    /// The POI planning instance.
    pub instance: PlanningInstance,
    /// A constructively feasible plan (template `PSPSS`, cluster 0).
    pub gold: Plan,
}

/// Zipfian sampler over `0..n` with exponent `s` (index 0 most likely).
struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

/// One standard gaussian draw (Box–Muller; the workspace carries no
/// rand_distr and may not grow one).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The five gold items: (kind, theme, lat-step index). Themes are
/// pairwise distinct and none is "restaurant", so the walk carries no
/// antecedents and never repeats a theme consecutively.
const GOLD_SPEC: [(ItemKind, &str); 5] = [
    (ItemKind::Primary, "monument"),
    (ItemKind::Secondary, "park"),
    (ItemKind::Primary, "palace"),
    (ItemKind::Secondary, "garden"),
    (ItemKind::Secondary, "viewpoint"),
];

/// Spacing of the gold chain, in degrees latitude (~0.33 km per leg —
/// far inside the 5 km distance threshold and any shortlist radius).
const GOLD_STEP_DEG: f64 = 0.003;

/// Generates a seeded city catalog with `n_pois` items (minimum 32).
///
/// Runs in O(n): cluster assignment, theme draws and prerequisite
/// wiring all work per cluster, never across the whole catalog.
pub fn city(n_pois: usize, seed: u64) -> CityDataset {
    assert!(n_pois >= 32, "city catalogs start at 32 POIs, got {n_pois}");
    let vocabulary =
        TopicVocabulary::new(CITY_THEMES.iter().copied()).expect("city themes have no duplicates");
    let mut rng = StdRng::seed_from_u64(seed);

    // A ~110 × 110 km synthetic metro area.
    let bbox = BoundingBox::new(47.0, 1.0, 48.0, 2.5);
    let n_clusters = (n_pois / 200).clamp(8, 256);
    let cluster_zipf = Zipf::new(n_clusters, 1.0);
    let theme_zipf = Zipf::new(CITY_THEMES.len(), 1.0);
    let centers: Vec<(f64, f64)> = (0..n_clusters)
        .map(|_| {
            let p = bbox.lerp(
                0.05 + 0.9 * rng.random::<f64>(),
                0.05 + 0.9 * rng.random::<f64>(),
            );
            (p.lat, p.lon)
        })
        .collect();

    struct Draft {
        cluster: usize,
        themes: Vec<usize>,
        attrs: PoiAttrs,
        kind: ItemKind,
        hours: f64,
    }

    let theme_index = |name: &str| {
        CITY_THEMES
            .iter()
            .position(|t| *t == name)
            .expect("gold themes are in the vocabulary")
    };

    let mut drafts: Vec<Draft> = Vec::with_capacity(n_pois);
    // Items 0..5 are the gold chain, walking north from cluster 0's
    // center in template order.
    for (i, (kind, theme)) in GOLD_SPEC.iter().enumerate() {
        drafts.push(Draft {
            cluster: 0,
            themes: vec![theme_index(theme)],
            attrs: PoiAttrs {
                lat: centers[0].0 + GOLD_STEP_DEG * i as f64,
                lon: centers[0].1,
                popularity: if *kind == ItemKind::Primary { 5.0 } else { 3.0 },
            },
            kind: *kind,
            hours: 1.0,
        });
    }

    // Flagships: a small popular Primary set spread across the busiest
    // clusters (the gold chain already contributed two).
    let n_flagships = (n_pois / 250).clamp(6, 64);
    for f in 0..n_flagships {
        let cluster = f % n_clusters;
        let (clat, clon) = centers[cluster];
        drafts.push(Draft {
            cluster,
            themes: vec![theme_zipf.sample(&mut rng)],
            attrs: PoiAttrs {
                lat: clat + 0.004 * gauss(&mut rng),
                lon: clon + 0.006 * gauss(&mut rng),
                popularity: (2.0 * (4.5 + 0.5 * rng.random::<f64>())).round() / 2.0,
            },
            kind: ItemKind::Primary,
            hours: 1.5,
        });
    }

    // The long tail.
    while drafts.len() < n_pois {
        let cluster = cluster_zipf.sample(&mut rng);
        let (clat, clon) = centers[cluster];
        let mut themes = vec![theme_zipf.sample(&mut rng)];
        if rng.random::<f64>() < 0.3 {
            let extra = theme_zipf.sample(&mut rng);
            if extra != themes[0] {
                themes.push(extra);
            }
        }
        let popularity = (2.0 * (1.0 + 4.0 * rng.random::<f64>().powi(2))).round() / 2.0;
        drafts.push(Draft {
            cluster,
            themes,
            attrs: PoiAttrs {
                lat: clat + 0.008 * gauss(&mut rng),
                lon: clon + 0.012 * gauss(&mut rng),
                popularity,
            },
            kind: ItemKind::Secondary,
            hours: (0.25_f64 * (popularity * 1.5).round()).clamp(0.5, 2.0),
        });
    }

    // Cluster-local museum/gallery lists for restaurant antecedents.
    let museum_theme = theme_index("museum");
    let gallery_theme = theme_index("gallery");
    let restaurant_theme = theme_index("restaurant");
    let mut cluster_museums: Vec<Vec<usize>> = vec![Vec::new(); n_clusters];
    for (i, d) in drafts.iter().enumerate() {
        // Dual-themed museum-restaurants are excluded from the pool:
        // only restaurants carry antecedents, so keeping every
        // antecedent non-restaurant makes the prerequisite graph
        // bipartite and therefore acyclic.
        if (d.themes.contains(&museum_theme) || d.themes.contains(&gallery_theme))
            && !d.themes.contains(&restaurant_theme)
        {
            cluster_museums[d.cluster].push(i);
        }
    }

    let items: Vec<Item> = drafts
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let prereq = if d.themes.contains(&restaurant_theme) {
                let mut nearby: Vec<(f64, usize)> = cluster_museums[d.cluster]
                    .iter()
                    .filter(|&&m| m != i)
                    .map(|&m| {
                        let md = &drafts[m].attrs;
                        let dist = tpp_geo::haversine_km(d.attrs.lat, d.attrs.lon, md.lat, md.lon);
                        (dist, m)
                    })
                    .collect();
                nearby.sort_by(|a, b| a.0.total_cmp(&b.0));
                PrereqExpr::any_of(nearby.into_iter().take(3).map(|(_, m)| ItemId::from(m)))
            } else {
                PrereqExpr::None
            };
            Item::poi(
                ItemId::from(i),
                format!("poi-{i:06}"),
                format!("POI {i} (cluster {})", d.cluster),
                d.kind,
                d.hours,
                prereq,
                TopicVector::from_topics(
                    CITY_THEMES.len(),
                    d.themes.iter().map(|&t| tpp_model::TopicId::from(t)),
                ),
                d.attrs,
            )
        })
        .collect();

    let name = format!("city/{n_pois}");
    let catalog = Catalog::new(name, vocabulary, items).expect("generated catalog is valid");
    let hard = HardConstraints {
        credits: 6.0,
        n_primary: 2,
        n_secondary: 3,
        gap: 1,
    };
    let ideal = TopicVector::ones(catalog.vocabulary().len());
    let soft = SoftConstraints::new(ideal, TemplateSet::paper_trip_example(), &hard)
        .expect("paper trip templates are 2P/3S");
    let gold = Plan::from_items((0..GOLD_SPEC.len()).map(ItemId::from).collect());
    let instance = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: Some(TripConstraints {
            max_distance_km: Some(5.0),
            no_consecutive_same_theme: true,
        }),
        default_start: Some(ItemId::from(0usize)),
    };
    instance
        .validate()
        .expect("generated instance is consistent");
    assert_gold_feasible(&instance, &gold);
    CityDataset { instance, gold }
}

/// Re-derives the gold plan's feasibility from the hard constraints —
/// a self-contained walk, not a planner call, so the generator proves
/// its own invariant without depending on `tpp-core`.
fn assert_gold_feasible(instance: &PlanningInstance, gold: &Plan) {
    let catalog = &instance.catalog;
    let hard = &instance.hard;
    let trip = instance.trip.as_ref().expect("city instances are trips");
    assert_eq!(gold.len(), hard.horizon(), "gold plan fills the horizon");
    let mut hours = 0.0;
    let mut travelled_km = 0.0;
    let mut primaries = 0;
    let mut secondaries = 0;
    for (pos, &id) in gold.items().iter().enumerate() {
        let item = catalog.item(id);
        assert!(
            item.prereq.is_none(),
            "gold item {} carries an antecedent",
            item.code
        );
        assert!(
            !gold.items()[..pos].contains(&id),
            "gold plan repeats {}",
            item.code
        );
        hours += item.credits;
        match item.kind {
            ItemKind::Primary => primaries += 1,
            ItemKind::Secondary => secondaries += 1,
        }
        if pos > 0 {
            let prev = catalog.item(gold.items()[pos - 1]);
            let (a, b) = (prev.poi.expect("POI"), item.poi.expect("POI"));
            travelled_km += tpp_geo::haversine_km(a.lat, a.lon, b.lat, b.lon);
            // The trip environment budgets *cumulative* distance.
            if let Some(max_km) = trip.max_distance_km {
                assert!(
                    travelled_km <= max_km,
                    "gold walk {travelled_km:.2} km exceeds {max_km} km"
                );
            }
            if trip.no_consecutive_same_theme {
                assert!(
                    prev.topics.intersection_count(&item.topics) == 0,
                    "gold items {} and {} share a theme",
                    prev.code,
                    item.code
                );
            }
        }
    }
    assert!(hours <= hard.credits, "gold hours {hours} over budget");
    assert_eq!(primaries, hard.n_primary, "gold primary count");
    assert_eq!(secondaries, hard.n_secondary, "gold secondary count");
    let kinds = gold.kind_sequence(catalog);
    assert!(
        instance
            .soft
            .templates
            .templates()
            .iter()
            .any(|t| t.slots() == kinds.as_slice()),
        "gold kind sequence matches no template"
    );
}

/// A 1 000-POI city (stays on the dense Q / full-scan fast paths).
pub fn city_1k(seed: u64) -> CityDataset {
    city(1_000, seed)
}

/// A 10 000-POI city (sparse Q + grid-pruned shortlists by default).
pub fn city_10k(seed: u64) -> CityDataset {
    city(10_000, seed)
}

/// A 100 000-POI city — the stress tier.
pub fn city_100k(seed: u64) -> CityDataset {
    city(100_000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::CITY_SEED;

    #[test]
    fn small_city_has_the_advertised_shape() {
        let d = city_1k(CITY_SEED);
        assert_eq!(d.instance.catalog.len(), 1_000);
        assert_eq!(d.instance.catalog.vocabulary().len(), 24);
        assert!(d.instance.is_trip());
        assert_eq!(d.gold.len(), 5);
        assert_eq!(d.instance.default_start, Some(ItemId::from(0usize)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = city(2_000, 7);
        let b = city(2_000, 7);
        assert_eq!(a.gold, b.gold);
        for (x, y) in a
            .instance
            .catalog
            .items()
            .iter()
            .zip(b.instance.catalog.items())
        {
            assert_eq!(x.code, y.code);
            assert_eq!(x.topics, y.topics);
            let (xa, ya) = (x.poi.unwrap(), y.poi.unwrap());
            assert_eq!(xa.lat.to_bits(), ya.lat.to_bits());
            assert_eq!(xa.lon.to_bits(), ya.lon.to_bits());
        }
        let c = city(2_000, 8);
        assert_ne!(
            a.instance.catalog.items()[100].poi.unwrap().lat,
            c.instance.catalog.items()[100].poi.unwrap().lat,
            "different seeds must differ"
        );
    }

    #[test]
    fn themes_are_zipfian_not_uniform() {
        let d = city(5_000, CITY_SEED);
        let mut counts = vec![0usize; CITY_THEMES.len()];
        for item in d.instance.catalog.items() {
            for (t, count) in counts.iter_mut().enumerate() {
                if item.topics.get(tpp_model::TopicId::from(t)) {
                    *count += 1;
                }
            }
        }
        let head = counts[0];
        let tail = counts[CITY_THEMES.len() - 1];
        assert!(
            head > 4 * tail.max(1),
            "head theme {head} should dwarf tail theme {tail}"
        );
    }

    #[test]
    fn geography_is_clustered() {
        // Mean nearest-neighbour distance in a clustered layout is far
        // below the uniform-draw expectation over the same box. Sample
        // a few hundred POIs and compare against a crude uniform bound.
        let d = city(5_000, CITY_SEED);
        let items = d.instance.catalog.items();
        let sample: Vec<_> = items.iter().step_by(17).take(200).collect();
        let mut total = 0.0;
        for a in &sample {
            let pa = a.poi.unwrap();
            let mut best = f64::INFINITY;
            for b in items.iter().take(2_000) {
                if a.id == b.id {
                    continue;
                }
                let pb = b.poi.unwrap();
                let dkm = tpp_geo::haversine_km(pa.lat, pa.lon, pb.lat, pb.lon);
                if dkm < best {
                    best = dkm;
                }
            }
            total += best;
        }
        let mean_nn = total / sample.len() as f64;
        // Uniform 2k points over ~110×110 km ≈ 1.4 km mean NN distance;
        // clustering should pull it well under half that.
        assert!(
            mean_nn < 0.7,
            "mean NN distance {mean_nn:.3} km not clustered"
        );
    }

    #[test]
    fn restaurant_prereqs_are_cluster_local_museums() {
        let d = city(3_000, CITY_SEED);
        let voc = d.instance.catalog.vocabulary();
        let restaurant = voc.id_of("restaurant").unwrap();
        let museum = voc.id_of("museum").unwrap();
        let gallery = voc.id_of("gallery").unwrap();
        let mut checked = 0;
        for item in d.instance.catalog.items() {
            if item.topics.get(restaurant) && !item.prereq.is_none() {
                let attrs = item.poi.unwrap();
                for dep in item.prereq.referenced_items() {
                    let dep_item = d.instance.catalog.item(dep);
                    assert!(
                        dep_item.topics.get(museum) || dep_item.topics.get(gallery),
                        "{} antecedent {} is not museum-like",
                        item.code,
                        dep_item.code
                    );
                    // Cluster-local: antecedents stay within a short leg.
                    let da = dep_item.poi.unwrap();
                    let dist = tpp_geo::haversine_km(attrs.lat, attrs.lon, da.lat, da.lon);
                    assert!(dist < 20.0, "{}: antecedent {dist:.1} km away", item.code);
                }
                checked += 1;
            }
        }
        assert!(checked > 10, "too few restaurants with antecedents");
    }

    #[test]
    fn gold_plan_is_feasible_by_construction() {
        // The generator itself asserts this; re-run the walk here so a
        // regression fails a named test, not a deep expect().
        for n in [1_000, 10_000] {
            let d = city(n, CITY_SEED);
            assert_gold_feasible(&d.instance, &d.gold);
        }
    }

    #[test]
    fn rejects_tiny_catalogs() {
        let r = std::panic::catch_unwind(|| city(8, 1));
        assert!(r.is_err());
    }
}
