//! Univ-2: the Stanford-like catalog (§IV-A1).
//!
//! The paper's Univ-2 dataset has 3742 courses across 4 departments; the
//! evaluated M.S. Data Science program has **36 courses** and **73
//! topics**, with hard constraints expressed over **six sub-disciplines**:
//!
//! * (a) Mathematical and Statistical Foundations
//! * (b) Experimentation
//! * (c) Scientific Computing
//! * (d) Applied Machine Learning and Data Science
//! * (e) Practical Component
//! * (f) Elective
//!
//! The reward weighting uses one weight per sub-discipline, ω1..ω6
//! (Table III default `(0.25, 0.01, 0.15, 0.42, 0.01, 0.16)`), instead of
//! the two-way primary/secondary weights of Univ-1. Gold-standard plans
//! have 15 courses (the paper's gold score is 15). The starting points
//! exercised in Table XIV — `STATS 263` and `MS&E 237` — are embedded.

use crate::names::TOPIC_POOL;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_model::{
    Catalog, Category, HardConstraints, InterleavingTemplate, Item, ItemId, ItemKind,
    PlanningInstance, PrereqExpr, SoftConstraints, TemplateSet, TopicVector, TopicVocabulary,
};

/// `(code, name, sub-discipline a..f as 0..5, core?, AND-prereqs, OR-prereqs)`
struct CourseSpec {
    code: &'static str,
    name: &'static str,
    discipline: u8,
    core: bool,
    pre_all: &'static [&'static str],
    pre_any: &'static [&'static str],
}

const fn c(
    code: &'static str,
    name: &'static str,
    discipline: u8,
    core: bool,
    pre_all: &'static [&'static str],
    pre_any: &'static [&'static str],
) -> CourseSpec {
    CourseSpec {
        code,
        name,
        discipline,
        core,
        pre_all,
        pre_any,
    }
}

/// The 36 M.S. DS courses. `STATS 263` and `MS&E 237` (Table XIV starting
/// points) are embedded verbatim.
static COURSES: &[CourseSpec] = &[
    // (a) Mathematical and Statistical Foundations — 7 courses.
    c("STATS 263", "Design of Experiments", 0, true, &[], &[]),
    c(
        "STATS 305A",
        "Applied Statistics: Linear Models",
        0,
        true,
        &[],
        &[],
    ),
    c("MATH 230A", "Theory of Probability", 0, false, &[], &[]),
    c(
        "STATS 315A",
        "Modern Applied Statistics: Statistical Learning",
        0,
        false,
        &[],
        &["STATS 305A"],
    ),
    c(
        "MATH 104",
        "Applied Matrix Theory and Linear System Methods",
        0,
        false,
        &[],
        &[],
    ),
    c(
        "STATS 200",
        "Statistical Inference and Hypothesis Testing",
        0,
        false,
        &[],
        &["MATH 230A"],
    ),
    c(
        "STATS 217",
        "Stochastic Processes",
        0,
        false,
        &["MATH 230A"],
        &[],
    ),
    // (b) Experimentation — 4 courses.
    c(
        "MS&E 237",
        "Experiment Design for Product Analytics",
        1,
        true,
        &[],
        &[],
    ),
    c(
        "STATS 209",
        "Causal Inference for Data Science",
        1,
        false,
        &[],
        &["STATS 263", "MS&E 237"],
    ),
    c(
        "STATS 266",
        "Advanced Experiment Design and Sampling",
        1,
        false,
        &["STATS 263"],
        &[],
    ),
    c(
        "MS&E 226",
        "Small Data: Inference and Decision Analysis",
        1,
        false,
        &[],
        &["STATS 200"],
    ),
    // (c) Scientific Computing — 6 courses.
    c(
        "CME 211",
        "Scientific Computing and Software Development",
        2,
        true,
        &[],
        &[],
    ),
    c(
        "CME 213",
        "Parallel Computing for Scientific Applications",
        2,
        false,
        &["CME 211"],
        &[],
    ),
    c(
        "CS 246",
        "Mining Massive Data Sets and Stream Processing",
        2,
        false,
        &[],
        &["CME 211"],
    ),
    c(
        "CME 302",
        "Numerical Methods and Linear Algebra",
        2,
        false,
        &[],
        &["MATH 104"],
    ),
    c(
        "CS 149",
        "Parallel Programming Systems",
        2,
        false,
        &[],
        &["CME 211"],
    ),
    c(
        "CME 216",
        "Machine Learning for Computational Engineering",
        2,
        false,
        &[],
        &["CME 211", "CS 229"],
    ),
    // (d) Applied Machine Learning and Data Science — 8 courses.
    c("CS 229", "Machine Learning", 3, true, &["MATH 104"], &[]),
    c(
        "CS 224N",
        "Natural Language Processing with Deep Learning",
        3,
        false,
        &["CS 229"],
        &[],
    ),
    c(
        "CS 231N",
        "Computer Vision and Convolutional Networks",
        3,
        false,
        &["CS 229"],
        &[],
    ),
    c(
        "CS 234",
        "Reinforcement Learning",
        3,
        false,
        &["CS 229"],
        &[],
    ),
    c(
        "CS 345",
        "Data Management and Query Optimization",
        3,
        true,
        &[],
        &[],
    ),
    c(
        "CS 224W",
        "Machine Learning with Graphs and Social Networks",
        3,
        false,
        &[],
        &["CS 229"],
    ),
    c(
        "STATS 202",
        "Data Mining and Pattern Recognition",
        3,
        false,
        &[],
        &["STATS 305A"],
    ),
    c(
        "CS 329",
        "Interpretability and Fairness in Machine Learning",
        3,
        false,
        &["CS 229"],
        &[],
    ),
    // (e) Practical Component — 3 courses.
    c(
        "STATS 390",
        "Data Science Consulting Practicum",
        4,
        true,
        &["STATS 202"],
        &[],
    ),
    c("CS 341", "Big Data Project", 4, false, &["CS 246"], &[]),
    c(
        "MS&E 108",
        "Industry Analytics Project",
        4,
        false,
        &[],
        &["MS&E 237"],
    ),
    // (f) Electives — 8 courses.
    c(
        "CS 255",
        "Cryptography and Computer Security",
        5,
        false,
        &[],
        &[],
    ),
    c(
        "CS 261",
        "Optimization and Algorithmic Paradigms",
        5,
        false,
        &[],
        &[],
    ),
    c(
        "BIOMEDIN 215",
        "Data Driven Medicine and Health Informatics",
        5,
        false,
        &[],
        &[],
    ),
    c("MS&E 234", "Data Privacy and Ethics", 5, false, &[], &[]),
    c(
        "CS 276",
        "Information Retrieval and Web Search",
        5,
        false,
        &[],
        &["CS 345"],
    ),
    c("GSB 570", "Data Analytics in Fintech", 5, false, &[], &[]),
    c(
        "CS 247",
        "Human Computer Interaction and Data Visualization",
        5,
        false,
        &[],
        &[],
    ),
    c(
        "EE 263",
        "Signal Processing and Linear Dynamical Systems",
        5,
        false,
        &[],
        &["MATH 104"],
    ),
];

/// Univ-2 hard constraints: 15 courses of 3 units (45 units), 6 core +
/// 9 elective, prerequisites at least a quarter (3 courses) earlier.
pub fn univ2_hard() -> HardConstraints {
    HardConstraints {
        credits: 45.0,
        n_primary: 6,
        n_secondary: 9,
        gap: 3,
    }
}

/// Univ-2 interleaving templates: three expert permutations of 6 primary
/// + 9 secondary slots.
pub fn univ2_templates() -> TemplateSet {
    TemplateSet::new(vec![
        InterleavingTemplate::from_str("PPSSPSSPSSPSSPS").expect("valid"),
        InterleavingTemplate::from_str("PSPSSPSSPSSPSSP").expect("valid"),
        InterleavingTemplate::from_str("PSSPPSSPSSPPSSS").expect("valid"),
    ])
}

/// The Table III default sub-discipline weight vector ω1..ω6.
pub fn univ2_default_weights() -> [f64; 6] {
    [0.25, 0.01, 0.15, 0.42, 0.01, 0.16]
}

fn assign_topics(
    name: &str,
    item_index: usize,
    vocabulary: &TopicVocabulary,
    rng: &mut StdRng,
) -> TopicVector {
    let mut v = vocabulary.zero_vector();
    let lower = name.to_lowercase();
    for (i, topic) in vocabulary.names().iter().enumerate() {
        if lower.contains(topic.as_str()) {
            v.set(tpp_model::TopicId::from(i));
        }
    }
    let target = rng.random_range(2..=4);
    let n = vocabulary.len();
    // One quasi-unique "spread" topic per course keeps the coverage gate
    // passable late in a plan (without it, sparse name-derived topics
    // make late cores permanently gated once their themes are covered).
    v.set(tpp_model::TopicId::from((item_index * 7 + 3) % n));
    let mut guard = 0;
    while (v.count_ones() as usize) < target && guard < 1000 {
        v.set(tpp_model::TopicId::from(rng.random_range(0..n)));
        guard += 1;
    }
    v
}

/// Generates the Univ-2 M.S. Data Science instance (36 courses, 73
/// topics, 6 sub-disciplines).
pub fn univ2_ds(seed: u64) -> PlanningInstance {
    let vocabulary = TopicVocabulary::new(TOPIC_POOL[..73].iter().copied())
        .expect("topic pool has no duplicates");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5741);
    let id_of = |code: &str| -> Option<ItemId> {
        COURSES
            .iter()
            .position(|s| s.code == code)
            .map(ItemId::from)
    };
    let items: Vec<Item> = COURSES
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let all: Vec<ItemId> = spec.pre_all.iter().filter_map(|c| id_of(c)).collect();
            let any: Vec<ItemId> = spec.pre_any.iter().filter_map(|c| id_of(c)).collect();
            let all_e = PrereqExpr::all_of(all);
            let any_e = PrereqExpr::any_of(any);
            let prereq = match (all_e.is_none(), any_e.is_none()) {
                (true, true) => PrereqExpr::None,
                (false, true) => all_e,
                (true, false) => any_e,
                (false, false) => PrereqExpr::All(vec![all_e, any_e]),
            };
            let mut item = Item::course(
                ItemId::from(i),
                spec.code,
                spec.name,
                if spec.core {
                    ItemKind::Primary
                } else {
                    ItemKind::Secondary
                },
                3.0,
                prereq,
                assign_topics(spec.name, i, &vocabulary, &mut rng),
            );
            item.category = Some(Category(spec.discipline));
            item
        })
        .collect();
    let catalog =
        Catalog::new("univ2/ms-ds", vocabulary, items).expect("generated catalog is valid");
    let hard = univ2_hard();
    let ideal = TopicVector::ones(catalog.vocabulary().len());
    let soft = SoftConstraints::new(ideal, univ2_templates(), &hard)
        .expect("templates match hard constraints");
    let default_start = catalog.by_code("STATS 263").map(|i| i.id);
    let inst = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: None,
        default_start,
    };
    inst.validate().expect("generated instance is consistent");
    inst
}

/// The full Univ-2 catalog: 3742 courses across 4 departments, for
/// scalability experiments.
pub fn univ2_full_catalog(seed: u64) -> Catalog {
    let n_courses = 3742;
    let departments = ["STATS", "CS", "CME", "MS&E"];
    let vocabulary =
        TopicVocabulary::new(TOPIC_POOL.iter().copied()).expect("pool has no duplicates");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n_courses);
    for i in 0..n_courses {
        let dept = departments[i % departments.len()];
        let head = crate::names::COURSE_TITLE_HEADS[i % crate::names::COURSE_TITLE_HEADS.len()];
        let subject = crate::names::COURSE_TITLE_SUBJECTS
            [(i / 11) % crate::names::COURSE_TITLE_SUBJECTS.len()];
        let code = format!("{dept} {}", 100 + i / departments.len());
        let name = format!("{head} {subject}");
        let kind = if rng.random::<f64>() < 0.25 {
            ItemKind::Primary
        } else {
            ItemKind::Secondary
        };
        let prereq = if i >= 8 && rng.random::<f64>() < 0.25 {
            PrereqExpr::any_of([ItemId::from(i - 4), ItemId::from(i - 8)])
        } else {
            PrereqExpr::None
        };
        let topics = assign_topics(&name, i, &vocabulary, &mut rng);
        let mut item = Item::course(ItemId::from(i), code, name, kind, 3.0, prereq, topics);
        item.category = Some(Category((i % 6) as u8));
        items.push(item);
    }
    Catalog::new("univ2/full", vocabulary, items).expect("generated catalog is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::UNIV2_SEED;

    #[test]
    fn matches_paper_statistics() {
        let inst = univ2_ds(UNIV2_SEED);
        assert_eq!(inst.catalog.len(), 36);
        assert_eq!(inst.catalog.vocabulary().len(), 73);
        assert_eq!(inst.hard.horizon(), 15);
        assert_eq!(inst.catalog.primary_count(), 7);
    }

    #[test]
    fn six_sub_disciplines_all_populated() {
        let inst = univ2_ds(UNIV2_SEED);
        let mut counts = [0usize; 6];
        for item in inst.catalog.items() {
            counts[item
                .category
                .expect("every Univ-2 course has a category")
                .index()] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 36);
        assert_eq!(counts, [7, 4, 6, 8, 3, 8]);
    }

    #[test]
    fn table14_starting_points_embedded() {
        let inst = univ2_ds(UNIV2_SEED);
        assert!(inst.catalog.by_code("STATS 263").is_some());
        assert!(inst.catalog.by_code("MS&E 237").is_some());
        assert_eq!(
            inst.default_start,
            inst.catalog.by_code("STATS 263").map(|i| i.id)
        );
    }

    #[test]
    fn default_weights_sum_to_one() {
        let w = univ2_default_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn templates_have_paper_shape() {
        univ2_templates().check_shape(&univ2_hard()).unwrap();
    }

    #[test]
    fn prereqs_acyclic_and_internal() {
        // Catalog::new would reject cycles; also check references resolve.
        let inst = univ2_ds(UNIV2_SEED);
        for item in inst.catalog.items() {
            for dep in item.prereq.referenced_items() {
                assert!(inst.catalog.get(dep).is_some());
            }
        }
    }

    #[test]
    fn full_catalog_statistics() {
        let cat = univ2_full_catalog(3);
        assert_eq!(cat.len(), 3742);
        assert!(cat.primary_count() > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = univ2_ds(9);
        let b = univ2_ds(9);
        for (x, y) in a.catalog.items().iter().zip(b.catalog.items()) {
            assert_eq!(x.topics, y.topics);
        }
    }
}
