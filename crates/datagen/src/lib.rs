//! # tpp-datagen
//!
//! Seeded synthetic dataset generators that stand in for the paper's
//! scraped/proprietary data sources (NJIT and Stanford catalog scrapes,
//! Flickr photo logs, Google Places themes). Each generator reproduces
//! the *published statistics* of its dataset — item counts, topic
//! vocabulary sizes, core/elective proportions, prerequisite structure,
//! itinerary-log volumes — and embeds verbatim every course and POI the
//! paper names (Tables VI, VII, VIII), so the case-study experiments can
//! print the same entities the paper prints.
//!
//! All generation is deterministic in the seed; the default seeds in
//! [`defaults`] pin the exact instances the experiment harness uses.

#![warn(missing_docs)]

pub mod city;
pub mod itineraries;
pub mod names;
pub mod synthetic;
pub mod trips;
pub mod univ1;
pub mod univ2;

pub use city::{city, city_100k, city_10k, city_1k, CityDataset};
pub use itineraries::generate_itineraries;
pub use synthetic::{synthetic_course_instance, SyntheticConfig};
pub use trips::{nyc, paris, TripDataset};
pub use univ1::{univ1_cs, univ1_cyber, univ1_ds_ct, univ1_full_catalog, Univ1Program};
pub use univ2::{univ2_ds, univ2_full_catalog};

/// Default seeds used by the experiment harness.
pub mod defaults {
    /// Seed pinning the Univ-1 instances.
    pub const UNIV1_SEED: u64 = 0x5eed_0001;
    /// Seed pinning the Univ-2 instance.
    pub const UNIV2_SEED: u64 = 0x5eed_0002;
    /// Seed pinning the NYC trip dataset.
    pub const NYC_SEED: u64 = 0x5eed_0003;
    /// Seed pinning the Paris trip dataset.
    pub const PARIS_SEED: u64 = 0x5eed_0004;
    /// Seed pinning the city-scale catalogs (1k/10k/100k POIs).
    pub const CITY_SEED: u64 = 0x5eed_0005;
}
