//! Generic synthetic TPP instances of arbitrary size.
//!
//! The paper's evaluation fixes six datasets; this generator produces
//! course-style instances with a configurable item count, vocabulary
//! size, prerequisite density and core fraction. It backs the
//! size-scalability extension experiment (how learning time grows with
//! `|I|`, complementing Fig. 2's growth in `N`) and gives downstream
//! users a way to stress the planner on their own scales.

use crate::names::{COURSE_TITLE_HEADS, COURSE_TITLE_SUBJECTS, TOPIC_POOL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_model::{
    Catalog, HardConstraints, InterleavingTemplate, Item, ItemId, ItemKind, PlanningInstance,
    PrereqExpr, SoftConstraints, TemplateSet, TopicVector, TopicVocabulary,
};

/// Knobs for the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of items `|I|` (≥ 4).
    pub n_items: usize,
    /// Topic vocabulary size `|T|` (capped at the topic pool size).
    pub n_topics: usize,
    /// Fraction of primary items in `(0, 1)`.
    pub core_fraction: f64,
    /// Probability that an item carries a prerequisite.
    pub prereq_density: f64,
    /// Plan horizon: primary slots.
    pub n_primary: usize,
    /// Plan horizon: secondary slots.
    pub n_secondary: usize,
    /// Antecedent gap.
    pub gap: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_items: 50,
            n_topics: 60,
            core_fraction: 0.25,
            prereq_density: 0.3,
            n_primary: 5,
            n_secondary: 5,
            gap: 3,
        }
    }
}

impl SyntheticConfig {
    /// A config scaled to `n_items`, with everything else default.
    pub fn sized(n_items: usize) -> Self {
        SyntheticConfig {
            n_items,
            ..Self::default()
        }
    }
}

/// Generates a synthetic course-style instance. Deterministic in `seed`.
///
/// Guarantees: the catalog validates (dense ids, acyclic prerequisites),
/// at least `n_primary` prerequisite-free primaries exist (so the start
/// policy always has somewhere to begin and a valid plan exists), and
/// the templates match the hard constraints.
///
/// # Panics
/// Panics when the config cannot be satisfied (`n_items < horizon`,
/// zero horizon, …).
pub fn synthetic_course_instance(config: &SyntheticConfig, seed: u64) -> PlanningInstance {
    let horizon = config.n_primary + config.n_secondary;
    assert!(horizon > 0, "horizon must be positive");
    assert!(
        config.n_items >= horizon.max(4),
        "need at least max(horizon, 4) items"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_topics = config.n_topics.clamp(4, TOPIC_POOL.len());
    let vocabulary = TopicVocabulary::new(TOPIC_POOL[..n_topics].iter().copied())
        .expect("topic pool has no duplicates");

    let n_primaries = ((config.n_items as f64 * config.core_fraction).round() as usize)
        .clamp(config.n_primary, config.n_items - config.n_secondary);

    let mut items = Vec::with_capacity(config.n_items);
    for i in 0..config.n_items {
        let head = COURSE_TITLE_HEADS[i % COURSE_TITLE_HEADS.len()];
        let subject = COURSE_TITLE_SUBJECTS[(i / 3) % COURSE_TITLE_SUBJECTS.len()];
        let code = format!("SYN {:04}", 100 + i);
        let name = format!("{head} {subject}");
        let kind = if i < n_primaries {
            ItemKind::Primary
        } else {
            ItemKind::Secondary
        };
        // The first `n_primary` primaries and the first `n_secondary`
        // secondaries stay prerequisite-free so a valid plan always
        // exists; later items draw antecedents from strictly earlier ids
        // (acyclic by construction).
        let protected =
            i < config.n_primary || (i >= n_primaries && i < n_primaries + config.n_secondary);
        let prereq = if !protected && i >= 2 && rng.random::<f64>() < config.prereq_density {
            let a = ItemId::from(rng.random_range(0..i));
            if rng.random::<f64>() < 0.5 && i >= 3 {
                let mut b = ItemId::from(rng.random_range(0..i));
                while b == a {
                    b = ItemId::from(rng.random_range(0..i));
                }
                PrereqExpr::any_of([a, b])
            } else {
                PrereqExpr::Item(a)
            }
        } else {
            PrereqExpr::None
        };
        let mut topics = vocabulary.zero_vector();
        topics.set(tpp_model::TopicId::from((i * 7 + 1) % n_topics));
        let extra = rng.random_range(1..=3usize);
        for _ in 0..extra {
            topics.set(tpp_model::TopicId::from(rng.random_range(0..n_topics)));
        }
        items.push(Item::course(
            ItemId::from(i),
            code,
            name,
            kind,
            3.0,
            prereq,
            topics,
        ));
    }

    let catalog = Catalog::new(
        format!("synthetic/{}items", config.n_items),
        vocabulary,
        items,
    )
    .expect("generated catalog is valid");
    let hard = HardConstraints {
        credits: 3.0 * horizon as f64,
        n_primary: config.n_primary,
        n_secondary: config.n_secondary,
        gap: config.gap,
    };
    // Templates: strict alternation plus a front-loaded variant, adjusted
    // to the requested split.
    let mut alternating = String::new();
    let (mut p, mut s) = (config.n_primary, config.n_secondary);
    while p + s > 0 {
        if p * (config.n_secondary + 1) >= s * (config.n_primary + 1) && p > 0 {
            alternating.push('P');
            p -= 1;
        } else {
            alternating.push('S');
            s -= 1;
        }
    }
    let front_loaded = "P".repeat(config.n_primary) + &"S".repeat(config.n_secondary);
    let templates = TemplateSet::new(vec![
        InterleavingTemplate::from_str(&alternating).expect("generated template is valid"),
        InterleavingTemplate::from_str(&front_loaded).expect("generated template is valid"),
    ]);
    let soft = SoftConstraints::new(TopicVector::ones(n_topics), templates, &hard)
        .expect("templates match constraints");
    let default_start = Some(ItemId(0));
    let instance = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: None,
        default_start,
    };
    instance
        .validate()
        .expect("generated instance is consistent");
    tpp_obs::obs_event!(
        tpp_obs::Level::Debug,
        "datagen.synthetic",
        items = config.n_items,
        topics = n_topics,
        seed = seed,
    );
    instance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_valid_instance() {
        let inst = synthetic_course_instance(&SyntheticConfig::default(), 1);
        assert_eq!(inst.catalog.len(), 50);
        assert_eq!(inst.horizon(), 10);
        assert!(inst.catalog.primary_count() >= 5);
        inst.validate().unwrap();
    }

    #[test]
    fn scales_to_large_catalogs() {
        for n in [20, 100, 500, 2000] {
            let inst = synthetic_course_instance(&SyntheticConfig::sized(n), 7);
            assert_eq!(inst.catalog.len(), n);
        }
    }

    #[test]
    fn start_item_is_prereq_free_primary() {
        let inst = synthetic_course_instance(&SyntheticConfig::default(), 3);
        let start = inst.catalog.item(inst.default_start.unwrap());
        assert!(start.is_primary());
        assert!(start.prereq.is_none());
    }

    #[test]
    fn a_valid_plan_exists_via_gold_search_shape() {
        // The protected prefix guarantees enough prereq-free items of
        // each kind to fill the front-loaded template.
        let inst = synthetic_course_instance(&SyntheticConfig::default(), 11);
        let free_primaries = inst
            .catalog
            .items()
            .iter()
            .filter(|i| i.is_primary() && i.prereq.is_none())
            .count();
        let free_secondaries = inst
            .catalog
            .items()
            .iter()
            .filter(|i| !i.is_primary() && i.prereq.is_none())
            .count();
        assert!(free_primaries >= inst.hard.n_primary);
        assert!(free_secondaries >= inst.hard.n_secondary);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthetic_course_instance(&SyntheticConfig::default(), 5);
        let b = synthetic_course_instance(&SyntheticConfig::default(), 5);
        for (x, y) in a.catalog.items().iter().zip(b.catalog.items()) {
            assert_eq!(x.topics, y.topics);
            assert_eq!(x.prereq, y.prereq);
        }
    }

    #[test]
    fn custom_split_respected() {
        let config = SyntheticConfig {
            n_primary: 3,
            n_secondary: 7,
            ..SyntheticConfig::default()
        };
        let inst = synthetic_course_instance(&config, 2);
        assert_eq!(inst.horizon(), 10);
        inst.soft.templates.check_shape(&inst.hard).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_config_panics() {
        let config = SyntheticConfig {
            n_items: 5,
            ..SyntheticConfig::default()
        };
        let _ = synthetic_course_instance(&config, 0);
    }
}
