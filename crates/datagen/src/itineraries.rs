//! Flickr-like itinerary logs.
//!
//! The paper mines day-itineraries from Flickr photo timestamps ("a set
//! of POIs visited on the same day"). We simulate the same marginal
//! behaviour with a **popularity-and-proximity random walk**: tourists
//! start at a POI drawn proportionally to popularity, then repeatedly
//! move to an unvisited POI with probability proportional to
//! `popularity / (1 + distance_km)` — people photograph famous places
//! and don't trek across town between shots. Walk lengths of 2–6 POIs
//! match a day of sightseeing.
//!
//! These logs are exactly what the OMEGA baseline's co-consumption matrix
//! is built from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_model::{Catalog, ItemId, Plan};

/// Generates `count` day-itineraries over a POI catalog.
///
/// # Panics
/// Panics if the catalog has fewer than 2 items or items without POI
/// attributes.
pub fn generate_itineraries(catalog: &Catalog, count: usize, seed: u64) -> Vec<Plan> {
    assert!(catalog.len() >= 2, "need at least two POIs");
    let n = catalog.len();
    let pops: Vec<f64> = catalog
        .items()
        .iter()
        .map(|i| i.poi.expect("itineraries need POI attributes").popularity)
        .collect();
    let coords: Vec<(f64, f64)> = catalog
        .items()
        .iter()
        .map(|i| {
            let a = i.poi.expect("checked above");
            (a.lat, a.lon)
        })
        .collect();
    let total_pop: f64 = pops.iter().sum();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut weights = vec![0.0f64; n];
    for _ in 0..count {
        let len = rng.random_range(2..=6usize).min(n);
        let mut walk = Vec::with_capacity(len);
        // Start ∝ popularity.
        let mut pick = rng.random::<f64>() * total_pop;
        let mut start = 0usize;
        for (i, &p) in pops.iter().enumerate() {
            pick -= p;
            if pick <= 0.0 {
                start = i;
                break;
            }
        }
        walk.push(start);
        while walk.len() < len {
            let cur = *walk.last().expect("walk is non-empty");
            let mut total = 0.0;
            for (j, w) in weights.iter_mut().enumerate() {
                if walk.contains(&j) {
                    *w = 0.0;
                } else {
                    let d = tpp_geo::haversine_km(
                        coords[cur].0,
                        coords[cur].1,
                        coords[j].0,
                        coords[j].1,
                    );
                    *w = pops[j] / (1.0 + d);
                }
                total += *w;
            }
            if total <= 0.0 {
                break;
            }
            let mut pick = rng.random::<f64>() * total;
            let mut next = None;
            for (j, &w) in weights.iter().enumerate() {
                pick -= w;
                if w > 0.0 && pick <= 0.0 {
                    next = Some(j);
                    break;
                }
            }
            match next {
                Some(j) => walk.push(j),
                None => break,
            }
        }
        out.push(Plan::from_items(
            walk.into_iter().map(ItemId::from).collect(),
        ));
    }
    tpp_obs::obs_event!(
        tpp_obs::Level::Debug,
        "datagen.itineraries",
        catalog = catalog.name(),
        count = out.len(),
        seed = seed,
    );
    out
}

/// Builds the co-consumption matrix OMEGA's original utility uses:
/// `M[i][j]` = number of itineraries in which item `i` is consumed
/// (strictly) before item `j`.
pub fn co_consumption_matrix(catalog: &Catalog, itineraries: &[Plan]) -> Vec<Vec<u32>> {
    let n = catalog.len();
    let mut m = vec![vec![0u32; n]; n];
    for it in itineraries {
        let items = it.items();
        for (a, &i) in items.iter().enumerate() {
            for &j in &items[a + 1..] {
                m[i.index()][j.index()] += 1;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trips::nyc;

    #[test]
    fn walks_have_no_repeats_and_bounded_length() {
        let d = nyc(1);
        let its = generate_itineraries(&d.instance.catalog, 100, 9);
        assert_eq!(its.len(), 100);
        for it in &its {
            assert!((1..=6).contains(&it.len()));
            for (i, &id) in it.items().iter().enumerate() {
                assert!(!it.items()[..i].contains(&id), "repeat in {it}");
            }
        }
    }

    #[test]
    fn popular_pois_visited_more() {
        let d = nyc(1);
        let its = generate_itineraries(&d.instance.catalog, 2000, 10);
        let mut visits = vec![0u32; d.instance.catalog.len()];
        for it in &its {
            for &id in it.items() {
                visits[id.index()] += 1;
            }
        }
        // The most popular POI should be visited more often than the
        // least popular one — by a wide margin.
        let (mut best, mut worst) = (0usize, 0usize);
        for (i, item) in d.instance.catalog.items().iter().enumerate() {
            let p = item.poi.unwrap().popularity;
            if p > d.instance.catalog.items()[best].poi.unwrap().popularity {
                best = i;
            }
            if p < d.instance.catalog.items()[worst].poi.unwrap().popularity {
                worst = i;
            }
        }
        assert!(
            visits[best] > 2 * visits[worst].max(1),
            "best {} visits vs worst {}",
            visits[best],
            visits[worst]
        );
    }

    #[test]
    fn co_consumption_counts_ordered_pairs() {
        let d = nyc(1);
        let its = vec![
            Plan::from_items(vec![ItemId(0), ItemId(1), ItemId(2)]),
            Plan::from_items(vec![ItemId(1), ItemId(0)]),
        ];
        let m = co_consumption_matrix(&d.instance.catalog, &its);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][2], 1);
        assert_eq!(m[1][2], 1);
        assert_eq!(m[2][0], 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = nyc(1);
        let a = generate_itineraries(&d.instance.catalog, 50, 123);
        let b = generate_itineraries(&d.instance.catalog, 50, 123);
        assert_eq!(a, b);
    }
}
