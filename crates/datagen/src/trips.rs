//! Trip datasets: NYC and Paris POI universes (§IV-A1).
//!
//! The paper derives these from Flickr photo logs (2908 NYC / 5494 Paris
//! day-itineraries) with themes from the Google Places API (21 NYC / 16
//! Paris themes) over 90 / 114 POIs. We embed every POI the paper prints
//! (Tables VII, VIII) verbatim and synthesize the rest inside each city's
//! bounding box, then sample itinerary logs with a popularity-and-
//! proximity random walk (see [`crate::itineraries`]).
//!
//! Antecedent convention (§II-B2): physically demanding POIs come first —
//! every restaurant POI requires *some museum or gallery* to have been
//! visited earlier in the day (`OR` antecedent), mirroring "visit a
//! museum before a restaurant/cafe".

use crate::itineraries::generate_itineraries;
use crate::names::{
    PoiSpec, NYC_POIS, NYC_THEMES, PARIS_POIS, PARIS_THEMES, POI_SYNTH_AREAS_NYC,
    POI_SYNTH_AREAS_PARIS, POI_SYNTH_HEADS_NYC, POI_SYNTH_HEADS_PARIS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_geo::BoundingBox;
use tpp_model::{
    Catalog, HardConstraints, Item, ItemId, ItemKind, Plan, PlanningInstance, PoiAttrs, PrereqExpr,
    SoftConstraints, TemplateSet, TopicVector, TopicVocabulary, TripConstraints,
};

/// A trip dataset: the planning instance plus the Flickr-like itinerary
/// logs OMEGA consumes.
#[derive(Debug, Clone)]
pub struct TripDataset {
    /// The POI planning instance.
    pub instance: PlanningInstance,
    /// Day-itineraries mined from the (synthetic) photo logs.
    pub itineraries: Vec<Plan>,
}

/// City parameters for the generator.
struct CitySpec {
    name: &'static str,
    themes: &'static [&'static str],
    named: &'static [PoiSpec],
    synth_heads: &'static [&'static str],
    synth_areas: &'static [&'static str],
    bbox: BoundingBox,
    n_pois: usize,
    n_itineraries: usize,
    default_start: &'static str,
    /// Theme indices eligible as synthesized-POI themes that count as
    /// "museum-like" antecedents for restaurants.
    museum_like: &'static [&'static str],
}

fn build_city(spec: &CitySpec, seed: u64) -> TripDataset {
    let vocabulary =
        TopicVocabulary::new(spec.themes.iter().copied()).expect("theme lists have no duplicates");
    let mut rng = StdRng::seed_from_u64(seed);

    struct Draft {
        code: String,
        name: String,
        themes: Vec<usize>,
        attrs: PoiAttrs,
        primary: bool,
    }

    let mut drafts: Vec<Draft> = Vec::with_capacity(spec.n_pois);
    for p in spec.named {
        let themes = p
            .themes
            .iter()
            .map(|t| {
                spec.themes
                    .iter()
                    .position(|x| x == t)
                    .expect("named POI themes exist")
            })
            .collect();
        drafts.push(Draft {
            code: p.code.to_owned(),
            name: title_case(p.code),
            themes,
            attrs: PoiAttrs {
                lat: p.at.0,
                lon: p.at.1,
                // Half-star quantization (see the synthesized POIs below).
                popularity: (2.0 * p.popularity).round() / 2.0,
            },
            primary: p.primary,
        });
    }
    // Synthesize the remainder inside the city's bounding box.
    let mut combo = 0usize;
    while drafts.len() < spec.n_pois {
        let head = spec.synth_heads[combo % spec.synth_heads.len()];
        let area = spec.synth_areas[(combo / spec.synth_heads.len()) % spec.synth_areas.len()];
        let suffix = combo / (spec.synth_heads.len() * spec.synth_areas.len());
        combo += 1;
        let code = if suffix == 0 {
            format!("{head} {area}")
        } else {
            format!("{head} {area} {}", suffix + 1)
        };
        // Theme: derive the leading theme from the head fragment when it
        // names one, otherwise draw a random theme; add a second theme
        // sometimes.
        let lead = spec
            .themes
            .iter()
            .position(|t| head.contains(t) || head.contains(&t[..t.len().min(5)]))
            .unwrap_or_else(|| rng.random_range(0..spec.themes.len()));
        let mut themes = vec![lead];
        if rng.random::<f64>() < 0.4 {
            let extra = rng.random_range(0..spec.themes.len());
            if extra != lead {
                themes.push(extra);
            }
        }
        let point = spec.bbox.lerp(rng.random::<f64>(), rng.random::<f64>());
        drafts.push(Draft {
            code: code.clone(),
            name: title_case(&code),
            themes,
            attrs: PoiAttrs {
                lat: point.lat,
                lon: point.lon,
                // Popularity skewed low (most POIs are minor) and
                // quantized to half-star levels like real rating data —
                // the resulting reward ties are what separate blind
                // (EDA) from learned (RL) tie-breaking.
                popularity: (2.0 * (1.0 + 4.0 * rng.random::<f64>().powi(2))).round() / 2.0,
            },
            primary: false,
        });
    }

    // Restaurant antecedents: any museum/gallery-like POI qualifies.
    let museum_ids: Vec<ItemId> = drafts
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            d.themes
                .iter()
                .any(|&t| spec.museum_like.contains(&spec.themes[t]))
        })
        .map(|(i, _)| ItemId::from(i))
        .collect();
    let restaurant_theme = spec
        .themes
        .iter()
        .position(|t| *t == "restaurant")
        .expect("both cities have a restaurant theme");

    let items: Vec<Item> = drafts
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let prereq = if d.themes.contains(&restaurant_theme) && !museum_ids.is_empty() {
                // Limit the OR list to a handful of nearby museums so the
                // expression stays readable.
                let mut nearby: Vec<(f64, ItemId)> = museum_ids
                    .iter()
                    .filter(|m| m.index() != i)
                    .map(|&m| {
                        let md = &drafts[m.index()].attrs;
                        let dist = tpp_geo::haversine_km(d.attrs.lat, d.attrs.lon, md.lat, md.lon);
                        (dist, m)
                    })
                    .collect();
                nearby.sort_by(|a, b| a.0.total_cmp(&b.0));
                PrereqExpr::any_of(nearby.into_iter().take(3).map(|(_, m)| m))
            } else {
                PrereqExpr::None
            };
            let hours = (0.25_f64 * (d.attrs.popularity * 1.5).round()).clamp(0.5, 2.0);
            Item::poi(
                ItemId::from(i),
                d.code.clone(),
                d.name.clone(),
                if d.primary {
                    ItemKind::Primary
                } else {
                    ItemKind::Secondary
                },
                hours,
                prereq,
                TopicVector::from_topics(
                    spec.themes.len(),
                    d.themes.iter().map(|&t| tpp_model::TopicId::from(t)),
                ),
                d.attrs,
            )
        })
        .collect();

    let catalog = Catalog::new(spec.name, vocabulary, items).expect("generated catalog is valid");
    let hard = HardConstraints {
        credits: 6.0,
        n_primary: 2,
        n_secondary: 3,
        gap: 1,
    };
    let ideal = TopicVector::ones(catalog.vocabulary().len());
    let soft = SoftConstraints::new(ideal, TemplateSet::paper_trip_example(), &hard)
        .expect("paper trip templates are 2P/3S");
    let itineraries = generate_itineraries(&catalog, spec.n_itineraries, seed ^ 0x17);
    // Default start: a central, popular primary POI (itineraries starting
    // at a geographically remote primary dead-end against the distance
    // threshold).
    let default_start = catalog.by_code(spec.default_start).map(|i| i.id);
    let instance = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: Some(TripConstraints {
            max_distance_km: Some(5.0),
            no_consecutive_same_theme: true,
        }),
        default_start,
    };
    instance
        .validate()
        .expect("generated instance is consistent");
    TripDataset {
        instance,
        itineraries,
    }
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(f) => f.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The NYC trip dataset: 90 POIs, 21 themes, 2908 itineraries.
pub fn nyc(seed: u64) -> TripDataset {
    build_city(
        &CitySpec {
            name: "trips/nyc",
            themes: NYC_THEMES,
            named: NYC_POIS,
            synth_heads: POI_SYNTH_HEADS_NYC,
            synth_areas: POI_SYNTH_AREAS_NYC,
            bbox: BoundingBox::nyc(),
            n_pois: 90,
            n_itineraries: 2908,
            default_start: "brooklyn bridge",
            museum_like: &["museum", "gallery"],
        },
        seed,
    )
}

/// The Paris trip dataset: 114 POIs, 16 themes, 5494 itineraries.
pub fn paris(seed: u64) -> TripDataset {
    build_city(
        &CitySpec {
            name: "trips/paris",
            themes: PARIS_THEMES,
            named: PARIS_POIS,
            synth_heads: POI_SYNTH_HEADS_PARIS,
            synth_areas: POI_SYNTH_AREAS_PARIS,
            bbox: BoundingBox::paris(),
            n_pois: 114,
            n_itineraries: 5494,
            default_start: "louvre museum",
            museum_like: &["museum", "gallery"],
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::{NYC_SEED, PARIS_SEED};

    #[test]
    fn nyc_matches_paper_statistics() {
        let d = nyc(NYC_SEED);
        assert_eq!(d.instance.catalog.len(), 90);
        assert_eq!(d.instance.catalog.vocabulary().len(), 21);
        assert_eq!(d.itineraries.len(), 2908);
        assert!(d.instance.is_trip());
    }

    #[test]
    fn paris_matches_paper_statistics() {
        let d = paris(PARIS_SEED);
        assert_eq!(d.instance.catalog.len(), 114);
        assert_eq!(d.instance.catalog.vocabulary().len(), 16);
        assert_eq!(d.itineraries.len(), 5494);
    }

    #[test]
    fn paper_table8_pois_present() {
        let d = paris(PARIS_SEED);
        for code in [
            "pont neuf",
            "promenade plantée",
            "sainte chapelle",
            "viaduc des arts",
        ] {
            assert!(d.instance.catalog.by_code(code).is_some(), "missing {code}");
        }
        let n = nyc(NYC_SEED);
        for code in [
            "battery park",
            "brooklyn bridge",
            "colonnade row",
            "flatiron building",
        ] {
            assert!(n.instance.catalog.by_code(code).is_some(), "missing {code}");
        }
    }

    #[test]
    fn all_pois_have_attrs_and_valid_popularity() {
        let d = paris(PARIS_SEED);
        for item in d.instance.catalog.items() {
            let attrs = item.poi.expect("POI items carry attrs");
            assert!((1.0..=5.0).contains(&attrs.popularity), "{}", item.code);
            assert!((0.5..=2.5).contains(&item.credits), "{}", item.code);
            assert!(BoundingBox::paris().contains(&tpp_geo::GeoPoint::new(attrs.lat, attrs.lon)));
        }
    }

    #[test]
    fn restaurants_require_prior_museum() {
        let d = paris(PARIS_SEED);
        let voc = d.instance.catalog.vocabulary();
        let restaurant = voc.id_of("restaurant").unwrap();
        let mut saw_restaurant = false;
        for item in d.instance.catalog.items() {
            if item.topics.get(restaurant) {
                saw_restaurant = true;
                assert!(
                    !item.prereq.is_none(),
                    "{} is a restaurant without an antecedent",
                    item.code
                );
                // Each antecedent must be museum-like.
                for dep in item.prereq.referenced_items() {
                    let dep_item = d.instance.catalog.item(dep);
                    let museum = voc.id_of("museum").unwrap();
                    let gallery = voc.id_of("gallery").unwrap();
                    assert!(
                        dep_item.topics.get(museum) || dep_item.topics.get(gallery),
                        "{} antecedent {} is not museum-like",
                        item.code,
                        dep_item.code
                    );
                }
            }
        }
        assert!(saw_restaurant, "dataset should contain restaurants");
    }

    #[test]
    fn primaries_exist_and_popular() {
        for d in [nyc(NYC_SEED), paris(PARIS_SEED)] {
            let primaries: Vec<_> = d
                .instance
                .catalog
                .items()
                .iter()
                .filter(|i| i.is_primary())
                .collect();
            assert!(primaries.len() >= 2, "{}", d.instance.catalog.name());
            for p in &primaries {
                assert!(p.poi.unwrap().popularity >= 4.5, "{}", p.code);
            }
        }
    }

    #[test]
    fn itineraries_are_valid_walks() {
        let d = nyc(NYC_SEED);
        for it in d.itineraries.iter().take(200) {
            assert!((2..=6).contains(&it.len()), "length {}", it.len());
            // No repeats.
            for (i, &id) in it.items().iter().enumerate() {
                assert!(!it.items()[..i].contains(&id));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = nyc(5);
        let b = nyc(5);
        assert_eq!(a.itineraries.len(), b.itineraries.len());
        assert_eq!(a.itineraries[0], b.itineraries[0]);
        for (x, y) in a
            .instance
            .catalog
            .items()
            .iter()
            .zip(b.instance.catalog.items())
        {
            assert_eq!(x.code, y.code);
            assert_eq!(x.topics, y.topics);
        }
    }

    #[test]
    fn default_start_is_popular_primary() {
        let d = paris(PARIS_SEED);
        let start = d.instance.default_start.expect("has a start");
        let item = d.instance.catalog.item(start);
        assert_eq!(item.code, "louvre museum");
        assert!(item.is_primary());
        assert!(item.poi.unwrap().popularity >= 4.9);
    }
}
