//! Univ-1: the NJIT-like catalog (§IV-A1).
//!
//! The paper's Univ-1 dataset has 1216 courses over 126 programs in 6
//! schools, with three M.S. programs used in the experiments:
//!
//! | program | courses | topics |
//! |---|---|---|
//! | Data Science – Computational Track (DS-CT) | 31 | 60 |
//! | Cybersecurity | 30 | 61 |
//! | Computer Science (CS) | 32 | 100 |
//!
//! Every course the paper names (Table VI, plus the codes appearing in
//! the transfer-learning sequences of Table V) is embedded verbatim, with
//! the same core/elective designation per program: e.g. CS 675 (Machine
//! Learning) is *core* in DS-CT but *elective* in M.S. CS. DS-CT and CS
//! intentionally share many courses — that overlap is what makes the
//! paper's transfer-learning case study (§IV-D) possible.

use crate::names::TOPIC_POOL;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_model::{
    Catalog, HardConstraints, InterleavingTemplate, Item, ItemId, ItemKind, PlanningInstance,
    PrereqExpr, SoftConstraints, TemplateSet, TopicVector, TopicVocabulary,
};

/// A course in the shared NJIT-like pool.
struct CourseSpec {
    code: &'static str,
    name: &'static str,
    /// Prerequisites, all required ("AND").
    pre_all: &'static [&'static str],
    /// Prerequisites, any one suffices ("OR").
    pre_any: &'static [&'static str],
}

const fn c(
    code: &'static str,
    name: &'static str,
    pre_all: &'static [&'static str],
    pre_any: &'static [&'static str],
) -> CourseSpec {
    CourseSpec {
        code,
        name,
        pre_all,
        pre_any,
    }
}

/// The shared course pool. Table VI courses come first, verbatim.
static POOL: &[CourseSpec] = &[
    c("CS 610", "Data Structures and Algorithms", &[], &[]),
    c("CS 608", "Cryptography and Security", &[], &[]),
    c(
        "CS 656",
        "Internet and Higher-Layer Protocols",
        &[],
        &["CS 652"],
    ),
    c(
        "CS 667",
        "Design Techniques for Algorithms",
        &["CS 610"],
        &[],
    ),
    c(
        "CS 652",
        "Computer Networks-Architectures, Protocols and Standards",
        &[],
        &[],
    ),
    c("CS 634", "Data Mining", &[], &["CS 631", "CS 636"]),
    c("CS 675", "Machine Learning", &[], &[]),
    c("CS 631", "Data Management System Design", &[], &[]),
    c("CS 630", "Operating System Design", &[], &[]),
    c(
        "CS 700B",
        "Master's Project",
        &["CS 673"],
        &["CS 610", "CS 631"],
    ),
    c("CS 683", "Software Project Management", &[], &[]),
    c(
        "CS 677",
        "Deep Learning",
        &["CS 675"],
        &["CS 610", "CS 634", "CS 657"],
    ),
    c(
        "CS 639",
        "Elec. Medical Records: Med Terminologies and Comp. Imp.",
        &[],
        &[],
    ),
    c(
        "CS 645",
        "Security and Privacy in Computer Systems",
        &[],
        &["CS 608", "CS 652"],
    ),
    c("CS 644", "Introduction to Big Data", &[], &[]),
    c("MATH 661", "Applied Statistics", &[], &[]),
    c("CS 636", "Data Analytics with R Program", &[], &[]),
    // Codes that appear in Table V's "bad" transfer sequences.
    c(
        "CS 696",
        "Network Management and Security",
        &["CS 646"],
        &[],
    ),
    c("CS 704", "Advanced Topics in Data Mining", &["CS 634"], &[]),
    // Plausible fills (invented but NJIT-flavoured).
    c(
        "MATH 662",
        "Probability Distributions and Inference",
        &[],
        &[],
    ),
    c(
        "CS 632",
        "Advanced Database System Design",
        &["CS 631"],
        &[],
    ),
    c("CS 633", "Distributed Systems", &[], &["CS 630", "CS 652"]),
    c("CS 635", "Computer Programming Languages", &[], &[]),
    c(
        "CS 637",
        "Data Visualization and Analytics",
        &[],
        &["CS 636"],
    ),
    c("CS 643", "Cloud Computing", &[], &["CS 633", "CS 652"]),
    c("CS 646", "Network Protocols Security", &["CS 652"], &[]),
    c(
        "CS 647",
        "Counter Hacking Techniques",
        &[],
        &["CS 608", "CS 645"],
    ),
    c("CS 648", "Digital Forensics", &[], &["CS 649", "CS 647"]),
    c(
        "CS 649",
        "Intrusion Detection and Malware Analysis",
        &[],
        &["CS 608"],
    ),
    c(
        "CS 657",
        "Statistical Methods in Data Science",
        &[],
        &["MATH 661"],
    ),
    c("CS 659", "Image Processing and Analysis", &[], &[]),
    c("CS 660", "Permission-Based Blockchain Systems", &[], &[]),
    c(
        "CS 665",
        "Pattern Recognition and Applications",
        &[],
        &["CS 675"],
    ),
    c("CS 668", "Computational Geometry", &["CS 610"], &[]),
    c("CS 670", "Artificial Intelligence", &[], &["CS 610"]),
    c(
        "CS 673",
        "Software Design and Production Methodology",
        &[],
        &[],
    ),
    c("CS 680", "Linux Kernel Programming", &[], &["CS 630"]),
    c(
        "CS 684",
        "Software Testing and Quality Assurance",
        &[],
        &["CS 673"],
    ),
    c(
        "CS 685",
        "Software Architecture and Evaluation",
        &[],
        &["CS 673"],
    ),
    c(
        "CS 686",
        "Secure Web Application Development",
        &[],
        &["CS 645"],
    ),
    c("CS 687", "Programming for Data Science", &[], &[]),
    c("CS 688", "Natural Language Processing", &[], &["CS 675"]),
    c("CS 690", "Information Retrieval", &[], &["CS 631"]),
    c("CS 698", "Reinforcement Learning", &["CS 675"], &[]),
    c("CS 701", "Advanced Operating Systems", &["CS 630"], &[]),
    c("CS 707", "Social Network Analysis", &[], &["CS 634"]),
    c(
        "CS 708",
        "Advanced Data Security and Privacy",
        &[],
        &["CS 645", "CS 608"],
    ),
    c("CS 732", "Advanced Machine Learning", &["CS 675"], &[]),
    c(
        "CS 744",
        "Experiment Design in Computing",
        &[],
        &["MATH 661"],
    ),
    c("IS 601", "Web Systems Development", &[], &[]),
    c("IS 663", "System Analysis and Design", &[], &[]),
    c(
        "IS 682",
        "Forensic Auditing for Computing Security",
        &[],
        &["CS 648"],
    ),
];

/// One of the three Univ-1 M.S. programs the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Univ1Program {
    /// M.S. Data Science — Computational Track (31 courses, 60 topics).
    DsCt,
    /// M.S. Cybersecurity (30 courses, 61 topics).
    Cyber,
    /// M.S. Computer Science (32 courses, 100 topics).
    Cs,
}

impl Univ1Program {
    /// Program name as used in catalog identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Univ1Program::DsCt => "univ1/ms-ds-ct",
            Univ1Program::Cyber => "univ1/ms-cybersecurity",
            Univ1Program::Cs => "univ1/ms-cs",
        }
    }

    /// `(course codes with core flag, topic vocabulary size, default start)`.
    fn spec(self) -> (&'static [(&'static str, bool)], usize, &'static str) {
        match self {
            // 31 courses, 5 cores — exactly the courses Table V labels
            // "core" in DS-CT, so every valid plan must schedule all of
            // them; CS 677's elective antecedent (CS 610 OR CS 634) is
            // the prerequisite trap that separates far-sighted policies
            // from myopic ones.
            Univ1Program::DsCt => (
                &[
                    ("CS 675", true),
                    ("CS 677", true),
                    ("CS 644", true),
                    ("MATH 661", true),
                    ("CS 636", true),
                    ("CS 631", false),
                    ("MATH 662", false),
                    ("CS 657", false),
                    ("CS 610", false),
                    ("CS 683", false),
                    ("CS 652", false),
                    ("CS 639", false),
                    ("CS 645", false),
                    ("CS 634", false),
                    ("CS 696", false),
                    ("CS 704", false),
                    ("CS 632", false),
                    ("CS 637", false),
                    ("CS 643", false),
                    ("CS 659", false),
                    ("CS 660", false),
                    ("CS 665", false),
                    ("CS 670", false),
                    ("CS 687", false),
                    ("CS 688", false),
                    ("CS 690", false),
                    ("CS 698", false),
                    ("CS 707", false),
                    ("CS 732", false),
                    ("CS 744", false),
                    ("CS 700B", false),
                ],
                60,
                "CS 675",
            ),
            // 30 courses, 6 cores; CS 696 and CS 648 carry elective
            // antecedents (CS 646, CS 649).
            Univ1Program::Cyber => (
                &[
                    ("CS 608", true),
                    ("CS 645", true),
                    ("CS 652", true),
                    ("CS 656", true),
                    ("CS 696", true),
                    ("CS 646", false),
                    ("CS 647", false),
                    ("CS 648", true),
                    ("CS 610", false),
                    ("CS 630", false),
                    ("CS 631", false),
                    ("CS 633", false),
                    ("CS 635", false),
                    ("CS 643", false),
                    ("CS 649", false),
                    ("CS 660", false),
                    ("CS 670", false),
                    ("CS 673", false),
                    ("CS 680", false),
                    ("CS 683", false),
                    ("CS 684", false),
                    ("CS 686", false),
                    ("CS 701", false),
                    ("CS 708", false),
                    ("MATH 661", false),
                    ("IS 601", false),
                    ("IS 663", false),
                    ("IS 682", false),
                    ("CS 675", false),
                    ("CS 700B", false),
                ],
                61,
                "CS 608",
            ),
            // 32 courses, 6 cores — exactly Table V's M.S. CS core labels
            // (CS 610/656/667/631/630/700B); CS 656 and CS 700B carry
            // elective antecedents (CS 652, CS 673).
            Univ1Program::Cs => (
                &[
                    ("CS 610", true),
                    ("CS 656", true),
                    ("CS 667", true),
                    ("CS 631", true),
                    ("CS 630", true),
                    ("CS 700B", true),
                    ("CS 635", false),
                    ("CS 673", false),
                    ("CS 608", false),
                    ("CS 652", false),
                    ("CS 634", false),
                    ("CS 675", false),
                    ("CS 704", false),
                    ("CS 645", false),
                    ("CS 636", false),
                    ("MATH 661", false),
                    ("CS 632", false),
                    ("CS 633", false),
                    ("CS 643", false),
                    ("CS 646", false),
                    ("CS 659", false),
                    ("CS 665", false),
                    ("CS 668", false),
                    ("CS 670", false),
                    ("CS 680", false),
                    ("CS 683", false),
                    ("CS 684", false),
                    ("CS 685", false),
                    ("CS 688", false),
                    ("CS 690", false),
                    ("CS 701", false),
                    ("CS 732", false),
                ],
                100,
                "CS 610",
            ),
        }
    }
}

fn find_spec(code: &str) -> &'static CourseSpec {
    POOL.iter()
        .find(|s| s.code == code)
        .unwrap_or_else(|| panic!("course {code} missing from pool"))
}

/// Builds a prerequisite expression for `spec`, keeping only antecedents
/// present in this program (a prerequisite taught outside the program is
/// waived, as real programs do).
fn build_prereq(spec: &CourseSpec, id_of: &dyn Fn(&str) -> Option<ItemId>) -> PrereqExpr {
    let all: Vec<ItemId> = spec.pre_all.iter().filter_map(|c| id_of(c)).collect();
    let any: Vec<ItemId> = spec.pre_any.iter().filter_map(|c| id_of(c)).collect();
    let all_expr = PrereqExpr::all_of(all);
    let any_expr = PrereqExpr::any_of(any);
    match (all_expr.is_none(), any_expr.is_none()) {
        (true, true) => PrereqExpr::None,
        (false, true) => all_expr,
        (true, false) => any_expr,
        (false, false) => PrereqExpr::All(vec![all_expr, any_expr]),
    }
}

/// Assigns topic vectors: phrase-match the course name against the
/// vocabulary, then pad with seeded-random topics to 3–6 per course.
fn assign_topics(
    name: &str,
    item_index: usize,
    vocabulary: &TopicVocabulary,
    rng: &mut StdRng,
) -> TopicVector {
    let mut v = vocabulary.zero_vector();
    let lower = name.to_lowercase();
    for (i, topic) in vocabulary.names().iter().enumerate() {
        if lower.contains(topic.as_str()) {
            v.set(tpp_model::TopicId::from(i));
        }
    }
    let target = rng.random_range(2..=4);
    let n = vocabulary.len();
    // One quasi-unique "spread" topic per course keeps the coverage gate
    // passable late in a plan (without it, sparse name-derived topics
    // make late cores permanently gated once their themes are covered).
    v.set(tpp_model::TopicId::from((item_index * 7 + 3) % n));
    let mut guard = 0;
    while (v.count_ones() as usize) < target && guard < 1000 {
        v.set(tpp_model::TopicId::from(rng.random_range(0..n)));
        guard += 1;
    }
    v
}

/// Standard Univ-1 hard constraints: 30 credit hours at 3 credits each,
/// 5 core + 5 elective, prerequisites at least a semester (3 courses)
/// earlier — the paper's `⟨30, 5, 5, 3⟩`.
pub fn univ1_hard() -> HardConstraints {
    HardConstraints {
        credits: 30.0,
        n_primary: 5,
        n_secondary: 5,
        gap: 3,
    }
}

/// The Univ-1 interleaving template set: three expert permutations of
/// 5 primary + 5 secondary slots.
pub fn univ1_templates() -> TemplateSet {
    TemplateSet::new(vec![
        InterleavingTemplate::from_str("PPSPSSPSPS").expect("valid"),
        InterleavingTemplate::from_str("PSSPPSPSSP").expect("valid"),
        InterleavingTemplate::from_str("PSPSPSPSPS").expect("valid"),
    ])
}

/// Generates one Univ-1 program instance.
pub fn univ1_program(program: Univ1Program, seed: u64) -> PlanningInstance {
    let (members, n_topics, start_code) = program.spec();
    let vocabulary = TopicVocabulary::new(TOPIC_POOL[..n_topics].iter().copied())
        .expect("topic pool has no duplicates");
    let mut rng = StdRng::seed_from_u64(seed ^ members.len() as u64);

    let id_of = |code: &str| -> Option<ItemId> {
        members
            .iter()
            .position(|(c, _)| *c == code)
            .map(ItemId::from)
    };

    let items: Vec<Item> = members
        .iter()
        .enumerate()
        .map(|(i, (code, is_core))| {
            let spec = find_spec(code);
            let kind = if *is_core {
                ItemKind::Primary
            } else {
                ItemKind::Secondary
            };
            Item::course(
                ItemId::from(i),
                spec.code,
                spec.name,
                kind,
                3.0,
                build_prereq(spec, &id_of),
                assign_topics(spec.name, i, &vocabulary, &mut rng),
            )
        })
        .collect();

    let catalog = Catalog::new(program.name(), vocabulary, items)
        .expect("generated catalog satisfies invariants");
    let hard = univ1_hard();
    // §IV-A3: |T_ideal| equals the full program vocabulary (60/61/100) —
    // the student wants broad coverage; personalization narrows it via
    // the experiment configs.
    let ideal = TopicVector::ones(catalog.vocabulary().len());
    let soft = SoftConstraints::new(ideal, univ1_templates(), &hard)
        .expect("templates match hard constraints");
    let default_start = catalog.by_code(start_code).map(|it| it.id);
    let inst = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: None,
        default_start,
    };
    inst.validate().expect("generated instance is consistent");
    inst
}

/// M.S. DS-CT instance (31 courses, 60 topics).
pub fn univ1_ds_ct(seed: u64) -> PlanningInstance {
    univ1_program(Univ1Program::DsCt, seed)
}

/// M.S. Cybersecurity instance (30 courses, 61 topics).
pub fn univ1_cyber(seed: u64) -> PlanningInstance {
    univ1_program(Univ1Program::Cyber, seed)
}

/// M.S. CS instance (32 courses, 100 topics).
pub fn univ1_cs(seed: u64) -> PlanningInstance {
    univ1_program(Univ1Program::Cs, seed)
}

/// The full Univ-1 catalog: 1216 courses across 126 degree programs in 6
/// schools, for scalability experiments. Program membership is recorded
/// in course codes (`"P017 CS 012"` = course 12 of program 17).
pub fn univ1_full_catalog(seed: u64) -> Catalog {
    let n_courses = 1216;
    let n_programs = 126;
    let n_schools = 6;
    let vocabulary =
        TopicVocabulary::new(TOPIC_POOL.iter().copied()).expect("pool has no duplicates");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n_courses);
    for i in 0..n_courses {
        let program = i % n_programs;
        let school = program % n_schools;
        let head = crate::names::COURSE_TITLE_HEADS[i % crate::names::COURSE_TITLE_HEADS.len()];
        let subject = crate::names::COURSE_TITLE_SUBJECTS
            [(i / 7) % crate::names::COURSE_TITLE_SUBJECTS.len()];
        let code = format!("P{program:03} S{school} C{:03}", i / n_programs);
        let name = format!("{head} {subject}");
        let kind = if rng.random::<f64>() < 0.3 {
            ItemKind::Primary
        } else {
            ItemKind::Secondary
        };
        // ~30% of courses get one OR prerequisite pair among earlier
        // courses of the same program (acyclic by construction).
        let prereq = if i >= 2 * n_programs && rng.random::<f64>() < 0.3 {
            let a = ItemId::from(i - n_programs);
            let b = ItemId::from(i - 2 * n_programs);
            PrereqExpr::any_of([a, b])
        } else {
            PrereqExpr::None
        };
        let topics = assign_topics(&name, i, &vocabulary, &mut rng);
        items.push(Item::course(
            ItemId::from(i),
            code,
            name,
            kind,
            3.0,
            prereq,
            topics,
        ));
    }
    Catalog::new("univ1/full", vocabulary, items).expect("generated catalog is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::UNIV1_SEED;

    #[test]
    fn ds_ct_matches_paper_statistics() {
        let inst = univ1_ds_ct(UNIV1_SEED);
        assert_eq!(inst.catalog.len(), 31);
        assert_eq!(inst.catalog.vocabulary().len(), 60);
        assert_eq!(inst.hard.horizon(), 10);
        assert!(inst.catalog.primary_count() < inst.catalog.secondary_count());
        assert_eq!(inst.catalog.primary_count(), 5);
    }

    #[test]
    fn cyber_matches_paper_statistics() {
        let inst = univ1_cyber(UNIV1_SEED);
        assert_eq!(inst.catalog.len(), 30);
        assert_eq!(inst.catalog.vocabulary().len(), 61);
    }

    #[test]
    fn cs_matches_paper_statistics() {
        let inst = univ1_cs(UNIV1_SEED);
        assert_eq!(inst.catalog.len(), 32);
        assert_eq!(inst.catalog.vocabulary().len(), 100);
    }

    #[test]
    fn table6_kinds_match_paper() {
        // DS-CT: CS 675 core, CS 610 elective, CS 634 elective.
        let ds = univ1_ds_ct(UNIV1_SEED);
        assert!(ds.catalog.by_code("CS 675").unwrap().is_primary());
        assert!(!ds.catalog.by_code("CS 610").unwrap().is_primary());
        assert!(!ds.catalog.by_code("CS 634").unwrap().is_primary());
        // CS: CS 610 core, CS 675 elective, CS 700B core.
        let cs = univ1_cs(UNIV1_SEED);
        assert!(cs.catalog.by_code("CS 610").unwrap().is_primary());
        assert!(!cs.catalog.by_code("CS 675").unwrap().is_primary());
        assert!(cs.catalog.by_code("CS 700B").unwrap().is_primary());
    }

    #[test]
    fn programs_share_courses_for_transfer() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        let cs = univ1_cs(UNIV1_SEED);
        let shared: Vec<&str> = ds
            .catalog
            .items()
            .iter()
            .filter(|i| cs.catalog.by_code(&i.code).is_some())
            .map(|i| i.code.as_str())
            .collect();
        assert!(
            shared.len() >= 15,
            "only {} shared courses: {shared:?}",
            shared.len()
        );
    }

    #[test]
    fn prereqs_resolve_inside_program() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        // CS 677 requires CS 675 AND (CS 610 OR CS 634 OR CS 657) — all
        // present in DS-CT, so every antecedent resolves in-program.
        let cs677 = ds.catalog.by_code("CS 677").unwrap();
        let deps: Vec<&str> = cs677
            .prereq
            .referenced_items()
            .into_iter()
            .map(|d| ds.catalog.item(d).code.as_str())
            .collect();
        assert_eq!(deps, vec!["CS 675", "CS 610", "CS 634", "CS 657"]);
    }

    #[test]
    fn every_course_has_topics() {
        for inst in [
            univ1_ds_ct(UNIV1_SEED),
            univ1_cyber(UNIV1_SEED),
            univ1_cs(UNIV1_SEED),
        ] {
            for item in inst.catalog.items() {
                assert!(
                    item.topics.count_ones() >= 2,
                    "{} has too few topics",
                    item.code
                );
            }
        }
    }

    #[test]
    fn name_phrase_matching_sets_expected_topics() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        let voc = ds.catalog.vocabulary();
        let ml = ds.catalog.by_code("CS 675").unwrap();
        assert!(ml.topics.get(voc.id_of("machine learning").unwrap()));
        let dm = ds.catalog.by_code("CS 634").unwrap();
        assert!(dm.topics.get(voc.id_of("data mining").unwrap()));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = univ1_ds_ct(42);
        let b = univ1_ds_ct(42);
        for (x, y) in a.catalog.items().iter().zip(b.catalog.items()) {
            assert_eq!(x.topics, y.topics);
        }
        let c = univ1_ds_ct(43);
        assert!(
            a.catalog
                .items()
                .iter()
                .zip(c.catalog.items())
                .any(|(x, y)| x.topics != y.topics),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn default_starts() {
        assert_eq!(
            univ1_ds_ct(UNIV1_SEED).default_start,
            univ1_ds_ct(UNIV1_SEED)
                .catalog
                .by_code("CS 675")
                .map(|i| i.id)
        );
        assert!(univ1_cs(UNIV1_SEED).default_start.is_some());
    }

    #[test]
    fn full_catalog_statistics() {
        let cat = univ1_full_catalog(7);
        assert_eq!(cat.len(), 1216);
        assert_eq!(cat.vocabulary().len(), TOPIC_POOL.len());
        // Roughly 30% primaries.
        let p = cat.primary_count() as f64 / cat.len() as f64;
        assert!((0.2..0.4).contains(&p), "primary fraction {p}");
    }

    #[test]
    fn templates_have_paper_shape() {
        univ1_templates().check_shape(&univ1_hard()).unwrap();
    }
}
