//! Embedded name pools: topic terms, course-title fragments and POI
//! names used by the generators.
//!
//! Everything the paper names explicitly (Tables VI–VIII) appears here
//! verbatim; the rest are plausible fills so the generated catalogs reach
//! the published sizes.

/// Pool of computing / data-science topic terms used to build course
/// topic vocabularies (the paper's Univ-1 programs have 60/61/100
/// distinct topics, Univ-2 has 73 — all drawn from this pool, in order).
pub const TOPIC_POOL: &[&str] = &[
    "algorithms",
    "classification",
    "clustering",
    "statistics",
    "regression",
    "data structure",
    "neural network",
    "probability",
    "data visualization",
    "linear system",
    "matrix decomposition",
    "data management",
    "data transfer",
    "machine learning",
    "deep learning",
    "databases",
    "query optimization",
    "distributed systems",
    "parallel computing",
    "operating systems",
    "computer networks",
    "network protocols",
    "cryptography",
    "security",
    "privacy",
    "authentication",
    "malware analysis",
    "intrusion detection",
    "digital forensics",
    "risk assessment",
    "software engineering",
    "software testing",
    "project management",
    "compilers",
    "programming languages",
    "functional programming",
    "object orientation",
    "web development",
    "cloud computing",
    "virtualization",
    "big data",
    "stream processing",
    "data mining",
    "text mining",
    "information retrieval",
    "natural language",
    "computer vision",
    "image processing",
    "pattern recognition",
    "reinforcement learning",
    "optimization",
    "convex analysis",
    "graph theory",
    "combinatorics",
    "computational geometry",
    "numerical methods",
    "simulation",
    "stochastic processes",
    "time series",
    "forecasting",
    "experiment design",
    "causal inference",
    "bayesian inference",
    "sampling",
    "hypothesis testing",
    "dimensionality reduction",
    "feature engineering",
    "recommender systems",
    "social networks",
    "human computer interaction",
    "user interfaces",
    "computer graphics",
    "rendering",
    "game design",
    "robotics",
    "control systems",
    "embedded systems",
    "computer architecture",
    "hardware design",
    "quantum computing",
    "information theory",
    "coding theory",
    "signal processing",
    "speech recognition",
    "bioinformatics",
    "computational biology",
    "health informatics",
    "medical imaging",
    "fintech",
    "blockchain",
    "smart contracts",
    "auction theory",
    "game theory",
    "mechanism design",
    "decision theory",
    "knowledge representation",
    "logic programming",
    "automated reasoning",
    "model checking",
    "formal verification",
    "program analysis",
    "concurrency",
    "memory management",
    "storage systems",
    "file systems",
    "indexing",
    "transaction processing",
    "data warehousing",
    "etl pipelines",
    "data governance",
    "data ethics",
    "fairness",
    "interpretability",
    "federated learning",
    "transfer learning",
    "meta learning",
    "generative models",
    "graphical models",
    "kernel methods",
    "ensemble methods",
    "anomaly detection",
];

/// Adjective/noun fragments for synthesizing extra course titles.
pub const COURSE_TITLE_HEADS: &[&str] = &[
    "Advanced",
    "Applied",
    "Topics in",
    "Foundations of",
    "Principles of",
    "Introduction to",
    "Seminar in",
    "Methods in",
    "Systems for",
    "Theory of",
];

/// Subject fragments for synthesizing extra course titles.
pub const COURSE_TITLE_SUBJECTS: &[&str] = &[
    "Machine Learning",
    "Data Engineering",
    "Statistical Computing",
    "Network Security",
    "Cloud Systems",
    "Information Retrieval",
    "Computer Vision",
    "Natural Language Processing",
    "Distributed Databases",
    "Software Verification",
    "Cyber-Physical Systems",
    "Optimization",
    "Computational Statistics",
    "Data Privacy",
    "Stream Processing",
    "Knowledge Graphs",
    "Human-Centered Computing",
    "Algorithmic Game Theory",
    "Scientific Computing",
    "Parallel Algorithms",
];

/// The 21 POI themes the paper extracts for NYC from the Places API.
pub const NYC_THEMES: &[&str] = &[
    "park",
    "establishment",
    "museum",
    "church",
    "bridge",
    "gallery",
    "theater",
    "market",
    "library",
    "monument",
    "skyscraper",
    "stadium",
    "zoo",
    "aquarium",
    "garden",
    "square",
    "harbor",
    "university",
    "restaurant",
    "observatory",
    "memorial",
];

/// The 16 POI themes the paper extracts for Paris.
pub const PARIS_THEMES: &[&str] = &[
    "establishment",
    "park",
    "church",
    "museum",
    "gallery",
    "palace",
    "river",
    "street",
    "restaurant",
    "cathedral",
    "monument",
    "garden",
    "opera",
    "market",
    "cemetery",
    "tower",
];

/// Named NYC POIs; every POI the paper prints (Tables VII, VIII) comes
/// first. Fields: code, themes, (lat, lon), visit hours, popularity,
/// primary?
pub struct PoiSpec {
    /// Stable lowercase code, as the paper prints them.
    pub code: &'static str,
    /// Theme names (must exist in the city's theme list).
    pub themes: &'static [&'static str],
    /// Latitude, longitude.
    pub at: (f64, f64),
    /// Visit duration in hours.
    pub hours: f64,
    /// Popularity score 1–5 (Flickr-photo-count proxy).
    pub popularity: f64,
    /// Must-visit?
    pub primary: bool,
}

/// NYC POIs named in the paper plus well-known fills (24 entries; the
/// generator synthesizes the rest of the 90).
pub const NYC_POIS: &[PoiSpec] = &[
    PoiSpec {
        code: "battery park",
        themes: &["park"],
        at: (40.7033, -74.0170),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "brooklyn bridge",
        themes: &["bridge", "establishment"],
        at: (40.7061, -73.9969),
        hours: 1.0,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "colonnade row",
        themes: &["establishment", "museum"],
        at: (40.7290, -73.9925),
        hours: 0.5,
        popularity: 3.0,
        primary: false,
    },
    PoiSpec {
        code: "flatiron building",
        themes: &["skyscraper", "establishment"],
        at: (40.7411, -73.9897),
        hours: 0.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "hudson river park",
        themes: &["park"],
        at: (40.7285, -74.0115),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "rockefeller center",
        themes: &["establishment", "skyscraper"],
        at: (40.7587, -73.9787),
        hours: 1.5,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "museum of television and radio",
        themes: &["museum"],
        at: (40.7614, -73.9776),
        hours: 1.5,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "new york university",
        themes: &["university"],
        at: (40.7295, -73.9965),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "central park",
        themes: &["park", "garden"],
        at: (40.7829, -73.9654),
        hours: 2.0,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "metropolitan museum of art",
        themes: &["museum", "gallery"],
        at: (40.7794, -73.9632),
        hours: 2.5,
        popularity: 5.0,
        primary: true,
    },
    PoiSpec {
        code: "museum of modern art",
        themes: &["museum", "gallery"],
        at: (40.7614, -73.9776),
        hours: 2.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "times square",
        themes: &["square", "establishment"],
        at: (40.7580, -73.9855),
        hours: 0.5,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "empire state building",
        themes: &["skyscraper", "observatory"],
        at: (40.7484, -73.9857),
        hours: 1.5,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "statue of liberty",
        themes: &["monument", "memorial"],
        at: (40.6892, -74.0445),
        hours: 2.5,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "grand central terminal",
        themes: &["establishment", "market"],
        at: (40.7527, -73.9772),
        hours: 0.5,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "new york public library",
        themes: &["library"],
        at: (40.7532, -73.9822),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "high line",
        themes: &["park", "garden"],
        at: (40.7480, -74.0048),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "bryant park",
        themes: &["park", "square"],
        at: (40.7536, -73.9832),
        hours: 0.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "south street seaport",
        themes: &["harbor", "market"],
        at: (40.7063, -74.0036),
        hours: 1.0,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "katz's delicatessen",
        themes: &["restaurant"],
        at: (40.7223, -73.9874),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "trinity church",
        themes: &["church"],
        at: (40.7081, -74.0120),
        hours: 0.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "st patrick's cathedral",
        themes: &["church"],
        at: (40.7585, -73.9759),
        hours: 0.5,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "yankee stadium",
        themes: &["stadium"],
        at: (40.8296, -73.9262),
        hours: 2.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "bronx zoo",
        themes: &["zoo", "park"],
        at: (40.8506, -73.8770),
        hours: 2.5,
        popularity: 4.0,
        primary: false,
    },
];

/// Paris POIs named in the paper plus well-known fills (26 entries; the
/// generator synthesizes the rest of the 114).
pub const PARIS_POIS: &[PoiSpec] = &[
    PoiSpec {
        code: "pont neuf",
        themes: &["establishment", "river"],
        at: (48.8566, 2.3413),
        hours: 0.5,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "promenade plantée",
        themes: &["park", "garden"],
        at: (48.8484, 2.3758),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "sainte chapelle",
        themes: &["church", "monument"],
        at: (48.8554, 2.3450),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "tour montparnasse",
        themes: &["establishment", "tower"],
        at: (48.8421, 2.3219),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "église st-eustache",
        themes: &["church"],
        at: (48.8634, 2.3451),
        hours: 0.5,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "viaduc des arts",
        themes: &["establishment", "gallery"],
        at: (48.8494, 2.3750),
        hours: 0.5,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "église st-germain des prés",
        themes: &["church"],
        at: (48.8540, 2.3339),
        hours: 0.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "musée du luxembourg",
        themes: &["museum", "gallery"],
        at: (48.8494, 2.3340),
        hours: 1.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "musée des égouts de paris",
        themes: &["museum"],
        at: (48.8628, 2.3028),
        hours: 1.0,
        popularity: 3.0,
        primary: false,
    },
    PoiSpec {
        code: "église st-sulpice",
        themes: &["church"],
        at: (48.8511, 2.3348),
        hours: 0.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "eiffel tower",
        themes: &["tower", "monument"],
        at: (48.8584, 2.2945),
        hours: 1.5,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "louvre museum",
        themes: &["museum", "gallery"],
        at: (48.8606, 2.3376),
        hours: 2.5,
        popularity: 5.0,
        primary: true,
    },
    PoiSpec {
        code: "pantheon",
        themes: &["monument", "church"],
        at: (48.8462, 2.3464),
        hours: 1.0,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "rue des martyrs",
        themes: &["street", "market"],
        at: (48.8781, 2.3394),
        hours: 0.5,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "musée d'orsay",
        themes: &["museum", "gallery"],
        at: (48.8600, 2.3266),
        hours: 2.0,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "notre-dame",
        themes: &["cathedral", "church"],
        at: (48.8530, 2.3499),
        hours: 1.0,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "palais garnier",
        themes: &["palace", "opera"],
        at: (48.8720, 2.3316),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "river seine",
        themes: &["river"],
        at: (48.8566, 2.3430),
        hours: 0.5,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "le cinq",
        themes: &["restaurant"],
        at: (48.8689, 2.3008),
        hours: 1.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "arc de triomphe",
        themes: &["monument"],
        at: (48.8738, 2.2950),
        hours: 1.0,
        popularity: 4.5,
        primary: true,
    },
    PoiSpec {
        code: "jardin du luxembourg",
        themes: &["garden", "park"],
        at: (48.8462, 2.3372),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "sacré-cœur",
        themes: &["church", "monument"],
        at: (48.8867, 2.3431),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "centre pompidou",
        themes: &["museum", "gallery"],
        at: (48.8607, 2.3522),
        hours: 2.0,
        popularity: 4.5,
        primary: false,
    },
    PoiSpec {
        code: "père lachaise",
        themes: &["cemetery", "garden"],
        at: (48.8610, 2.3933),
        hours: 1.5,
        popularity: 4.0,
        primary: false,
    },
    PoiSpec {
        code: "marché bastille",
        themes: &["market", "street"],
        at: (48.8530, 2.3698),
        hours: 0.5,
        popularity: 3.5,
        primary: false,
    },
    PoiSpec {
        code: "champs-élysées",
        themes: &["street", "establishment"],
        at: (48.8698, 2.3076),
        hours: 1.0,
        popularity: 4.5,
        primary: false,
    },
];

/// Name fragments for synthesizing additional POIs.
pub const POI_SYNTH_HEADS_NYC: &[&str] = &[
    "gallery at",
    "museum of",
    "park at",
    "theater on",
    "market on",
    "library of",
    "garden of",
    "church of",
    "observatory at",
    "memorial of",
];

/// Street/area fragments for synthesizing additional NYC POIs.
pub const POI_SYNTH_AREAS_NYC: &[&str] = &[
    "astor place",
    "greenwich village",
    "soho",
    "tribeca",
    "chelsea",
    "harlem",
    "midtown",
    "wall street",
    "lower east side",
    "upper west side",
    "chinatown",
    "little italy",
    "east village",
    "hell's kitchen",
    "murray hill",
    "nolita",
];

/// Name fragments for synthesizing additional Paris POIs.
pub const POI_SYNTH_HEADS_PARIS: &[&str] = &[
    "musée de",
    "galerie",
    "église de",
    "jardin de",
    "marché de",
    "place de",
    "rue de",
    "théâtre de",
    "palais de",
    "fontaine de",
];

/// Quarter fragments for synthesizing additional Paris POIs.
pub const POI_SYNTH_AREAS_PARIS: &[&str] = &[
    "montmartre",
    "le marais",
    "belleville",
    "la villette",
    "passy",
    "auteuil",
    "bercy",
    "montparnasse",
    "les halles",
    "saint-michel",
    "la défense",
    "batignolles",
    "pigalle",
    "charonne",
    "vaugirard",
    "grenelle",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_pool_large_enough_for_all_programs() {
        // The biggest vocabulary in the paper is 100 (Univ-1 M.S. CS).
        assert!(TOPIC_POOL.len() >= 100, "pool has {}", TOPIC_POOL.len());
    }

    #[test]
    fn topic_pool_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for t in TOPIC_POOL {
            assert!(seen.insert(t), "duplicate topic {t}");
        }
    }

    #[test]
    fn theme_counts_match_paper() {
        assert_eq!(NYC_THEMES.len(), 21);
        assert_eq!(PARIS_THEMES.len(), 16);
    }

    #[test]
    fn paper_named_pois_present() {
        for code in [
            "battery park",
            "brooklyn bridge",
            "colonnade row",
            "flatiron building",
            "hudson river park",
            "rockefeller center",
            "museum of television and radio",
            "new york university",
        ] {
            assert!(NYC_POIS.iter().any(|p| p.code == code), "missing {code}");
        }
        for code in [
            "pont neuf",
            "promenade plantée",
            "sainte chapelle",
            "tour montparnasse",
            "église st-eustache",
            "viaduc des arts",
            "église st-germain des prés",
            "musée du luxembourg",
            "musée des égouts de paris",
            "église st-sulpice",
        ] {
            assert!(PARIS_POIS.iter().any(|p| p.code == code), "missing {code}");
        }
    }

    #[test]
    fn poi_themes_exist_in_city_theme_lists() {
        for p in NYC_POIS {
            for t in p.themes {
                assert!(
                    NYC_THEMES.contains(t),
                    "nyc poi {} has unknown theme {t}",
                    p.code
                );
            }
        }
        for p in PARIS_POIS {
            for t in p.themes {
                assert!(
                    PARIS_THEMES.contains(t),
                    "paris poi {} has unknown theme {t}",
                    p.code
                );
            }
        }
    }

    #[test]
    fn poi_codes_unique() {
        for pool in [NYC_POIS, PARIS_POIS] {
            let mut seen = std::collections::HashSet::new();
            for p in pool {
                assert!(seen.insert(p.code), "duplicate poi {}", p.code);
            }
        }
    }

    #[test]
    fn popularity_in_range() {
        for p in NYC_POIS.iter().chain(PARIS_POIS) {
            assert!((1.0..=5.0).contains(&p.popularity), "{}", p.code);
            assert!(p.hours > 0.0);
        }
    }
}
