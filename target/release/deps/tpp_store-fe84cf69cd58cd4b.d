/root/repo/target/release/deps/tpp_store-fe84cf69cd58cd4b.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/release/deps/libtpp_store-fe84cf69cd58cd4b.rlib: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/release/deps/libtpp_store-fe84cf69cd58cd4b.rmeta: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
