/root/repo/target/release/deps/rl_planner-d687b333d92ee422.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rl_planner-d687b333d92ee422: crates/cli/src/main.rs

crates/cli/src/main.rs:
