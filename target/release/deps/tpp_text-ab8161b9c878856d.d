/root/repo/target/release/deps/tpp_text-ab8161b9c878856d.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/release/deps/libtpp_text-ab8161b9c878856d.rlib: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/release/deps/libtpp_text-ab8161b9c878856d.rmeta: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
