/root/repo/target/release/deps/tpp_core-15fa4e553e6a6703.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

/root/repo/target/release/deps/libtpp_core-15fa4e553e6a6703.rlib: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

/root/repo/target/release/deps/libtpp_core-15fa4e553e6a6703.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/feedback.rs:
crates/core/src/params.rs:
crates/core/src/planner.rs:
crates/core/src/reward.rs:
crates/core/src/score.rs:
crates/core/src/transfer.rs:
