/root/repo/target/release/deps/tpp_geo-7962c17aed7f0444.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

/root/repo/target/release/deps/libtpp_geo-7962c17aed7f0444.rlib: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

/root/repo/target/release/deps/libtpp_geo-7962c17aed7f0444.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
