/root/repo/target/release/deps/serde-1fc1dd7c8d602abd.d: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1fc1dd7c8d602abd.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1fc1dd7c8d602abd.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
