/root/repo/target/release/deps/rl_planner-6f5995d09a76867c.d: src/lib.rs

/root/repo/target/release/deps/librl_planner-6f5995d09a76867c.rlib: src/lib.rs

/root/repo/target/release/deps/librl_planner-6f5995d09a76867c.rmeta: src/lib.rs

src/lib.rs:
