/root/repo/target/release/deps/tpp_datagen-4f4003b97c6bf141.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/release/deps/libtpp_datagen-4f4003b97c6bf141.rlib: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/release/deps/libtpp_datagen-4f4003b97c6bf141.rmeta: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
