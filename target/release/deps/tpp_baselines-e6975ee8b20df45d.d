/root/repo/target/release/deps/tpp_baselines-e6975ee8b20df45d.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/release/deps/libtpp_baselines-e6975ee8b20df45d.rlib: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/release/deps/libtpp_baselines-e6975ee8b20df45d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
