/root/repo/target/release/deps/tpp_obs-a876d03cf8bccf64.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

/root/repo/target/release/deps/libtpp_obs-a876d03cf8bccf64.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

/root/repo/target/release/deps/libtpp_obs-a876d03cf8bccf64.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/level.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/value.rs:
