/root/repo/target/release/deps/tpp_store-149e6c0276a042b3.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/release/deps/libtpp_store-149e6c0276a042b3.rlib: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/release/deps/libtpp_store-149e6c0276a042b3.rmeta: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
