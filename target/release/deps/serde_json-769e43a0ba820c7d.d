/root/repo/target/release/deps/serde_json-769e43a0ba820c7d.d: .devstubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-769e43a0ba820c7d.rlib: .devstubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-769e43a0ba820c7d.rmeta: .devstubs/serde_json/src/lib.rs

.devstubs/serde_json/src/lib.rs:
