/root/repo/target/release/deps/tpp_baselines-558a74942a21893e.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/release/deps/libtpp_baselines-558a74942a21893e.rlib: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/release/deps/libtpp_baselines-558a74942a21893e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
