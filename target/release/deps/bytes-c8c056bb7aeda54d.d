/root/repo/target/release/deps/bytes-c8c056bb7aeda54d.d: .devstubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-c8c056bb7aeda54d.rlib: .devstubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-c8c056bb7aeda54d.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
