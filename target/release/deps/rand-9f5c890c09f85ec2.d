/root/repo/target/release/deps/rand-9f5c890c09f85ec2.d: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9f5c890c09f85ec2.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9f5c890c09f85ec2.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
