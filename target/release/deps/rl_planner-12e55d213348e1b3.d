/root/repo/target/release/deps/rl_planner-12e55d213348e1b3.d: src/lib.rs

/root/repo/target/release/deps/librl_planner-12e55d213348e1b3.rlib: src/lib.rs

/root/repo/target/release/deps/librl_planner-12e55d213348e1b3.rmeta: src/lib.rs

src/lib.rs:
