/root/repo/target/release/deps/serde_derive-657ff7a68a1f1c0d.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-657ff7a68a1f1c0d.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
