/root/repo/target/release/deps/tpp_text-4d71316d6952b16a.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/release/deps/libtpp_text-4d71316d6952b16a.rlib: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/release/deps/libtpp_text-4d71316d6952b16a.rmeta: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
