/root/repo/target/release/deps/tpp_datagen-855a4761f5c054ba.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/release/deps/libtpp_datagen-855a4761f5c054ba.rlib: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/release/deps/libtpp_datagen-855a4761f5c054ba.rmeta: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
