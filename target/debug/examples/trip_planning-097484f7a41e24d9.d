/root/repo/target/debug/examples/trip_planning-097484f7a41e24d9.d: examples/trip_planning.rs

/root/repo/target/debug/examples/trip_planning-097484f7a41e24d9: examples/trip_planning.rs

examples/trip_planning.rs:
