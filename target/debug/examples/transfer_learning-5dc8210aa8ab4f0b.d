/root/repo/target/debug/examples/transfer_learning-5dc8210aa8ab4f0b.d: examples/transfer_learning.rs

/root/repo/target/debug/examples/transfer_learning-5dc8210aa8ab4f0b: examples/transfer_learning.rs

examples/transfer_learning.rs:
