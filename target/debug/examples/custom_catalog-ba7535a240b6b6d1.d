/root/repo/target/debug/examples/custom_catalog-ba7535a240b6b6d1.d: examples/custom_catalog.rs

/root/repo/target/debug/examples/custom_catalog-ba7535a240b6b6d1: examples/custom_catalog.rs

examples/custom_catalog.rs:
