/root/repo/target/debug/examples/custom_catalog-c7e635e6e9b67bad.d: examples/custom_catalog.rs

/root/repo/target/debug/examples/custom_catalog-c7e635e6e9b67bad: examples/custom_catalog.rs

examples/custom_catalog.rs:
