/root/repo/target/debug/examples/course_planning-36eb8f4ceaa9ed44.d: examples/course_planning.rs

/root/repo/target/debug/examples/course_planning-36eb8f4ceaa9ed44: examples/course_planning.rs

examples/course_planning.rs:
