/root/repo/target/debug/examples/transfer_learning-a5acce82340f0c55.d: examples/transfer_learning.rs

/root/repo/target/debug/examples/transfer_learning-a5acce82340f0c55: examples/transfer_learning.rs

examples/transfer_learning.rs:
