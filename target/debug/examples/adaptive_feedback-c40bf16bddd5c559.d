/root/repo/target/debug/examples/adaptive_feedback-c40bf16bddd5c559.d: examples/adaptive_feedback.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_feedback-c40bf16bddd5c559.rmeta: examples/adaptive_feedback.rs Cargo.toml

examples/adaptive_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
