/root/repo/target/debug/examples/trip_planning-2bde879ce20957fa.d: examples/trip_planning.rs Cargo.toml

/root/repo/target/debug/examples/libtrip_planning-2bde879ce20957fa.rmeta: examples/trip_planning.rs Cargo.toml

examples/trip_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
