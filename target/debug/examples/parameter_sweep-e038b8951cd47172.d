/root/repo/target/debug/examples/parameter_sweep-e038b8951cd47172.d: examples/parameter_sweep.rs

/root/repo/target/debug/examples/parameter_sweep-e038b8951cd47172: examples/parameter_sweep.rs

examples/parameter_sweep.rs:
