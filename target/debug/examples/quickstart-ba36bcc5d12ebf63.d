/root/repo/target/debug/examples/quickstart-ba36bcc5d12ebf63.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ba36bcc5d12ebf63: examples/quickstart.rs

examples/quickstart.rs:
