/root/repo/target/debug/examples/trip_planning-7c183397f67e6adb.d: examples/trip_planning.rs

/root/repo/target/debug/examples/trip_planning-7c183397f67e6adb: examples/trip_planning.rs

examples/trip_planning.rs:
