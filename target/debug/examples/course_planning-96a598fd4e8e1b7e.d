/root/repo/target/debug/examples/course_planning-96a598fd4e8e1b7e.d: examples/course_planning.rs

/root/repo/target/debug/examples/course_planning-96a598fd4e8e1b7e: examples/course_planning.rs

examples/course_planning.rs:
