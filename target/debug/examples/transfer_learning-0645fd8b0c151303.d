/root/repo/target/debug/examples/transfer_learning-0645fd8b0c151303.d: examples/transfer_learning.rs Cargo.toml

/root/repo/target/debug/examples/libtransfer_learning-0645fd8b0c151303.rmeta: examples/transfer_learning.rs Cargo.toml

examples/transfer_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
