/root/repo/target/debug/examples/adaptive_feedback-88d7b1313e5ae876.d: examples/adaptive_feedback.rs

/root/repo/target/debug/examples/adaptive_feedback-88d7b1313e5ae876: examples/adaptive_feedback.rs

examples/adaptive_feedback.rs:
