/root/repo/target/debug/examples/custom_catalog-8f998017c9356012.d: examples/custom_catalog.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_catalog-8f998017c9356012.rmeta: examples/custom_catalog.rs Cargo.toml

examples/custom_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
