/root/repo/target/debug/examples/adaptive_feedback-d7610e433310c317.d: examples/adaptive_feedback.rs

/root/repo/target/debug/examples/adaptive_feedback-d7610e433310c317: examples/adaptive_feedback.rs

examples/adaptive_feedback.rs:
