/root/repo/target/debug/examples/policy_persistence-e183f92a7ac1b66a.d: examples/policy_persistence.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_persistence-e183f92a7ac1b66a.rmeta: examples/policy_persistence.rs Cargo.toml

examples/policy_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
