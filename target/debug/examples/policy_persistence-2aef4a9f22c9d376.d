/root/repo/target/debug/examples/policy_persistence-2aef4a9f22c9d376.d: examples/policy_persistence.rs

/root/repo/target/debug/examples/policy_persistence-2aef4a9f22c9d376: examples/policy_persistence.rs

examples/policy_persistence.rs:
