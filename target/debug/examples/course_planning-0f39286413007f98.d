/root/repo/target/debug/examples/course_planning-0f39286413007f98.d: examples/course_planning.rs Cargo.toml

/root/repo/target/debug/examples/libcourse_planning-0f39286413007f98.rmeta: examples/course_planning.rs Cargo.toml

examples/course_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
