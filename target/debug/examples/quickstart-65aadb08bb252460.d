/root/repo/target/debug/examples/quickstart-65aadb08bb252460.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-65aadb08bb252460: examples/quickstart.rs

examples/quickstart.rs:
