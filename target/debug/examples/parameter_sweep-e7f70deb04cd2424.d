/root/repo/target/debug/examples/parameter_sweep-e7f70deb04cd2424.d: examples/parameter_sweep.rs

/root/repo/target/debug/examples/parameter_sweep-e7f70deb04cd2424: examples/parameter_sweep.rs

examples/parameter_sweep.rs:
