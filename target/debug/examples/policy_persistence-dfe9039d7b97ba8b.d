/root/repo/target/debug/examples/policy_persistence-dfe9039d7b97ba8b.d: examples/policy_persistence.rs

/root/repo/target/debug/examples/policy_persistence-dfe9039d7b97ba8b: examples/policy_persistence.rs

examples/policy_persistence.rs:
