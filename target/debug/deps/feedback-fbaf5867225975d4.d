/root/repo/target/debug/deps/feedback-fbaf5867225975d4.d: tests/feedback.rs

/root/repo/target/debug/deps/feedback-fbaf5867225975d4: tests/feedback.rs

tests/feedback.rs:
