/root/repo/target/debug/deps/tpp_text-ab3bf0adc4027787.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_text-ab3bf0adc4027787.rmeta: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs Cargo.toml

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
