/root/repo/target/debug/deps/ablations-ac2aee76e6f7d7c1.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ac2aee76e6f7d7c1.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
