/root/repo/target/debug/deps/tpp_rl-83c8b0201bb8087b.d: crates/rl/src/lib.rs crates/rl/src/dp.rs crates/rl/src/env.rs crates/rl/src/expected_sarsa.rs crates/rl/src/mc.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rollout.rs crates/rl/src/sarsa.rs crates/rl/src/schedule.rs crates/rl/src/stats.rs crates/rl/src/transfer.rs

/root/repo/target/debug/deps/tpp_rl-83c8b0201bb8087b: crates/rl/src/lib.rs crates/rl/src/dp.rs crates/rl/src/env.rs crates/rl/src/expected_sarsa.rs crates/rl/src/mc.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rollout.rs crates/rl/src/sarsa.rs crates/rl/src/schedule.rs crates/rl/src/stats.rs crates/rl/src/transfer.rs

crates/rl/src/lib.rs:
crates/rl/src/dp.rs:
crates/rl/src/env.rs:
crates/rl/src/expected_sarsa.rs:
crates/rl/src/mc.rs:
crates/rl/src/policy.rs:
crates/rl/src/qlearning.rs:
crates/rl/src/qtable.rs:
crates/rl/src/rollout.rs:
crates/rl/src/sarsa.rs:
crates/rl/src/schedule.rs:
crates/rl/src/stats.rs:
crates/rl/src/transfer.rs:
