/root/repo/target/debug/deps/pipeline_trip-b31c9ba86b7acda4.d: tests/pipeline_trip.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_trip-b31c9ba86b7acda4.rmeta: tests/pipeline_trip.rs Cargo.toml

tests/pipeline_trip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
