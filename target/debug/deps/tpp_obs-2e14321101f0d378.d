/root/repo/target/debug/deps/tpp_obs-2e14321101f0d378.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

/root/repo/target/debug/deps/libtpp_obs-2e14321101f0d378.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

/root/repo/target/debug/deps/libtpp_obs-2e14321101f0d378.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/level.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/value.rs:
