/root/repo/target/debug/deps/properties-e12082f007dbab84.d: tests/properties.rs

/root/repo/target/debug/deps/properties-e12082f007dbab84: tests/properties.rs

tests/properties.rs:
