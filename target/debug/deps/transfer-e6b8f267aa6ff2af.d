/root/repo/target/debug/deps/transfer-e6b8f267aa6ff2af.d: tests/transfer.rs

/root/repo/target/debug/deps/transfer-e6b8f267aa6ff2af: tests/transfer.rs

tests/transfer.rs:
