/root/repo/target/debug/deps/tpp_geo-6fa3216530af849b.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_geo-6fa3216530af849b.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
