/root/repo/target/debug/deps/transfer-376e9dde6230ae80.d: tests/transfer.rs

/root/repo/target/debug/deps/transfer-376e9dde6230ae80: tests/transfer.rs

tests/transfer.rs:
