/root/repo/target/debug/deps/tpp_text-c83f187e030ed0db.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/tpp_text-c83f187e030ed0db: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
