/root/repo/target/debug/deps/pipeline_trip-68b1bc967cf070fc.d: tests/pipeline_trip.rs

/root/repo/target/debug/deps/pipeline_trip-68b1bc967cf070fc: tests/pipeline_trip.rs

tests/pipeline_trip.rs:
