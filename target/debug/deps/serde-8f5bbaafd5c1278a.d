/root/repo/target/debug/deps/serde-8f5bbaafd5c1278a.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8f5bbaafd5c1278a.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8f5bbaafd5c1278a.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
