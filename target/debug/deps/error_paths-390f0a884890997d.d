/root/repo/target/debug/deps/error_paths-390f0a884890997d.d: tests/error_paths.rs Cargo.toml

/root/repo/target/debug/deps/liberror_paths-390f0a884890997d.rmeta: tests/error_paths.rs Cargo.toml

tests/error_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
