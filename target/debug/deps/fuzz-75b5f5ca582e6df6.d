/root/repo/target/debug/deps/fuzz-75b5f5ca582e6df6.d: crates/store/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-75b5f5ca582e6df6: crates/store/tests/fuzz.rs

crates/store/tests/fuzz.rs:
