/root/repo/target/debug/deps/obs_trace-3b247e9d944caeae.d: tests/obs_trace.rs Cargo.toml

/root/repo/target/debug/deps/libobs_trace-3b247e9d944caeae.rmeta: tests/obs_trace.rs Cargo.toml

tests/obs_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
