/root/repo/target/debug/deps/serde-efe87e4d187a7391.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-efe87e4d187a7391.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
