/root/repo/target/debug/deps/properties-a03db62cdf06190e.d: crates/rl/tests/properties.rs

/root/repo/target/debug/deps/properties-a03db62cdf06190e: crates/rl/tests/properties.rs

crates/rl/tests/properties.rs:
