/root/repo/target/debug/deps/properties-097b5781287ea744.d: crates/model/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-097b5781287ea744.rmeta: crates/model/tests/properties.rs Cargo.toml

crates/model/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
