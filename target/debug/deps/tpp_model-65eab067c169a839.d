/root/repo/target/debug/deps/tpp_model-65eab067c169a839.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/catalog.rs crates/model/src/constraints.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/item.rs crates/model/src/plan.rs crates/model/src/prereq.rs crates/model/src/template.rs crates/model/src/topic.rs crates/model/src/toy.rs crates/model/src/validate.rs

/root/repo/target/debug/deps/libtpp_model-65eab067c169a839.rlib: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/catalog.rs crates/model/src/constraints.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/item.rs crates/model/src/plan.rs crates/model/src/prereq.rs crates/model/src/template.rs crates/model/src/topic.rs crates/model/src/toy.rs crates/model/src/validate.rs

/root/repo/target/debug/deps/libtpp_model-65eab067c169a839.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/catalog.rs crates/model/src/constraints.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/item.rs crates/model/src/plan.rs crates/model/src/prereq.rs crates/model/src/template.rs crates/model/src/topic.rs crates/model/src/toy.rs crates/model/src/validate.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/catalog.rs:
crates/model/src/constraints.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/instance.rs:
crates/model/src/item.rs:
crates/model/src/plan.rs:
crates/model/src/prereq.rs:
crates/model/src/template.rs:
crates/model/src/topic.rs:
crates/model/src/toy.rs:
crates/model/src/validate.rs:
