/root/repo/target/debug/deps/tpp_eval-ddbde987a99319c2.d: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/extensions.rs crates/eval/src/fig1.rs crates/eval/src/fig2.rs crates/eval/src/raters.rs crates/eval/src/registry.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/sweeps.rs crates/eval/src/table4.rs crates/eval/src/table5.rs crates/eval/src/table7.rs crates/eval/src/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_eval-ddbde987a99319c2.rmeta: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/extensions.rs crates/eval/src/fig1.rs crates/eval/src/fig2.rs crates/eval/src/raters.rs crates/eval/src/registry.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/sweeps.rs crates/eval/src/table4.rs crates/eval/src/table5.rs crates/eval/src/table7.rs crates/eval/src/table8.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/datasets.rs:
crates/eval/src/extensions.rs:
crates/eval/src/fig1.rs:
crates/eval/src/fig2.rs:
crates/eval/src/raters.rs:
crates/eval/src/registry.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/sweeps.rs:
crates/eval/src/table4.rs:
crates/eval/src/table5.rs:
crates/eval/src/table7.rs:
crates/eval/src/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
