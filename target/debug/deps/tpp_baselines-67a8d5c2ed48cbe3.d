/root/repo/target/debug/deps/tpp_baselines-67a8d5c2ed48cbe3.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_baselines-67a8d5c2ed48cbe3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
