/root/repo/target/debug/deps/criterion-bc8f99c0f3ad4cbf.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bc8f99c0f3ad4cbf.rlib: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bc8f99c0f3ad4cbf.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
