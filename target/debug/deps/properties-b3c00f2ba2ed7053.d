/root/repo/target/debug/deps/properties-b3c00f2ba2ed7053.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-b3c00f2ba2ed7053: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
