/root/repo/target/debug/deps/properties-9c417790477d037c.d: crates/datagen/tests/properties.rs

/root/repo/target/debug/deps/properties-9c417790477d037c: crates/datagen/tests/properties.rs

crates/datagen/tests/properties.rs:
