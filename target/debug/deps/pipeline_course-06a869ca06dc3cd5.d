/root/repo/target/debug/deps/pipeline_course-06a869ca06dc3cd5.d: tests/pipeline_course.rs

/root/repo/target/debug/deps/pipeline_course-06a869ca06dc3cd5: tests/pipeline_course.rs

tests/pipeline_course.rs:
