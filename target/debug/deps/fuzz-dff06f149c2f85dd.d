/root/repo/target/debug/deps/fuzz-dff06f149c2f85dd.d: crates/store/tests/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-dff06f149c2f85dd.rmeta: crates/store/tests/fuzz.rs Cargo.toml

crates/store/tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
