/root/repo/target/debug/deps/tpp_bench-21d12566e32acd0e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_bench-21d12566e32acd0e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
