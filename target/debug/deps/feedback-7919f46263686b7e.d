/root/repo/target/debug/deps/feedback-7919f46263686b7e.d: tests/feedback.rs Cargo.toml

/root/repo/target/debug/deps/libfeedback-7919f46263686b7e.rmeta: tests/feedback.rs Cargo.toml

tests/feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
