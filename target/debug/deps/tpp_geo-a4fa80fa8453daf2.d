/root/repo/target/debug/deps/tpp_geo-a4fa80fa8453daf2.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

/root/repo/target/debug/deps/libtpp_geo-a4fa80fa8453daf2.rlib: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

/root/repo/target/debug/deps/libtpp_geo-a4fa80fa8453daf2.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
