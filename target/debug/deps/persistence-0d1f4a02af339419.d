/root/repo/target/debug/deps/persistence-0d1f4a02af339419.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-0d1f4a02af339419.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
