/root/repo/target/debug/deps/error_paths-dac93523deae17e7.d: tests/error_paths.rs

/root/repo/target/debug/deps/error_paths-dac93523deae17e7: tests/error_paths.rs

tests/error_paths.rs:
