/root/repo/target/debug/deps/micro-8d9f2625cc1d87ff.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-8d9f2625cc1d87ff.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
