/root/repo/target/debug/deps/cli-9c856551aa952ecd.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-9c856551aa952ecd: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_rl-planner=/root/repo/target/debug/rl-planner
