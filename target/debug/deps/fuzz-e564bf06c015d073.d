/root/repo/target/debug/deps/fuzz-e564bf06c015d073.d: crates/store/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-e564bf06c015d073: crates/store/tests/fuzz.rs

crates/store/tests/fuzz.rs:
