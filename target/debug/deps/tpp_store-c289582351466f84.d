/root/repo/target/debug/deps/tpp_store-c289582351466f84.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_store-c289582351466f84.rmeta: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
