/root/repo/target/debug/deps/tpp_text-858f3a940b95bea3.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libtpp_text-858f3a940b95bea3.rlib: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libtpp_text-858f3a940b95bea3.rmeta: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
