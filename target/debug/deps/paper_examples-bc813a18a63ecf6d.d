/root/repo/target/debug/deps/paper_examples-bc813a18a63ecf6d.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-bc813a18a63ecf6d: tests/paper_examples.rs

tests/paper_examples.rs:
