/root/repo/target/debug/deps/paper_examples-3d30d63a52496c92.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-3d30d63a52496c92.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
