/root/repo/target/debug/deps/tpp_geo-2fe113ba758e3547.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_geo-2fe113ba758e3547.rmeta: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
