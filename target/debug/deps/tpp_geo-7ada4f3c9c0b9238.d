/root/repo/target/debug/deps/tpp_geo-7ada4f3c9c0b9238.d: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

/root/repo/target/debug/deps/tpp_geo-7ada4f3c9c0b9238: crates/geo/src/lib.rs crates/geo/src/grid.rs crates/geo/src/point.rs

crates/geo/src/lib.rs:
crates/geo/src/grid.rs:
crates/geo/src/point.rs:
