/root/repo/target/debug/deps/rl_planner-c5cdc215d366aed0.d: src/lib.rs

/root/repo/target/debug/deps/librl_planner-c5cdc215d366aed0.rlib: src/lib.rs

/root/repo/target/debug/deps/librl_planner-c5cdc215d366aed0.rmeta: src/lib.rs

src/lib.rs:
