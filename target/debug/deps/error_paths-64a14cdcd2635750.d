/root/repo/target/debug/deps/error_paths-64a14cdcd2635750.d: tests/error_paths.rs

/root/repo/target/debug/deps/error_paths-64a14cdcd2635750: tests/error_paths.rs

tests/error_paths.rs:
