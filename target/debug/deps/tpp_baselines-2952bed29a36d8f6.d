/root/repo/target/debug/deps/tpp_baselines-2952bed29a36d8f6.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/tpp_baselines-2952bed29a36d8f6: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
