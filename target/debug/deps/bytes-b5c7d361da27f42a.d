/root/repo/target/debug/deps/bytes-b5c7d361da27f42a.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b5c7d361da27f42a.rlib: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b5c7d361da27f42a.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
