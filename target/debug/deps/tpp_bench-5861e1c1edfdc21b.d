/root/repo/target/debug/deps/tpp_bench-5861e1c1edfdc21b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtpp_bench-5861e1c1edfdc21b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtpp_bench-5861e1c1edfdc21b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
