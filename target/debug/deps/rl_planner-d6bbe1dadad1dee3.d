/root/repo/target/debug/deps/rl_planner-d6bbe1dadad1dee3.d: src/lib.rs

/root/repo/target/debug/deps/rl_planner-d6bbe1dadad1dee3: src/lib.rs

src/lib.rs:
