/root/repo/target/debug/deps/tpp_baselines-fd20b0317d99f08e.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/libtpp_baselines-fd20b0317d99f08e.rlib: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/libtpp_baselines-fd20b0317d99f08e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
