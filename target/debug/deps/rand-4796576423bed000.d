/root/repo/target/debug/deps/rand-4796576423bed000.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4796576423bed000.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
