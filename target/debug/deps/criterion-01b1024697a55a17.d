/root/repo/target/debug/deps/criterion-01b1024697a55a17.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-01b1024697a55a17.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
