/root/repo/target/debug/deps/proptest-70a9b9171807fc9b.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-70a9b9171807fc9b.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-70a9b9171807fc9b.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
