/root/repo/target/debug/deps/serde_derive-7ebd74994a78c188.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7ebd74994a78c188.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
