/root/repo/target/debug/deps/tpp_rl-86a8e66baa8b0d98.d: crates/rl/src/lib.rs crates/rl/src/dp.rs crates/rl/src/env.rs crates/rl/src/expected_sarsa.rs crates/rl/src/mc.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rollout.rs crates/rl/src/sarsa.rs crates/rl/src/schedule.rs crates/rl/src/stats.rs crates/rl/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_rl-86a8e66baa8b0d98.rmeta: crates/rl/src/lib.rs crates/rl/src/dp.rs crates/rl/src/env.rs crates/rl/src/expected_sarsa.rs crates/rl/src/mc.rs crates/rl/src/policy.rs crates/rl/src/qlearning.rs crates/rl/src/qtable.rs crates/rl/src/rollout.rs crates/rl/src/sarsa.rs crates/rl/src/schedule.rs crates/rl/src/stats.rs crates/rl/src/transfer.rs Cargo.toml

crates/rl/src/lib.rs:
crates/rl/src/dp.rs:
crates/rl/src/env.rs:
crates/rl/src/expected_sarsa.rs:
crates/rl/src/mc.rs:
crates/rl/src/policy.rs:
crates/rl/src/qlearning.rs:
crates/rl/src/qtable.rs:
crates/rl/src/rollout.rs:
crates/rl/src/sarsa.rs:
crates/rl/src/schedule.rs:
crates/rl/src/stats.rs:
crates/rl/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
