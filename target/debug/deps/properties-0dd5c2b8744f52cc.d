/root/repo/target/debug/deps/properties-0dd5c2b8744f52cc.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-0dd5c2b8744f52cc: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
