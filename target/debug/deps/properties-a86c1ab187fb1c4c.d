/root/repo/target/debug/deps/properties-a86c1ab187fb1c4c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a86c1ab187fb1c4c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
