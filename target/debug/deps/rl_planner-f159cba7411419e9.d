/root/repo/target/debug/deps/rl_planner-f159cba7411419e9.d: src/lib.rs

/root/repo/target/debug/deps/rl_planner-f159cba7411419e9: src/lib.rs

src/lib.rs:
