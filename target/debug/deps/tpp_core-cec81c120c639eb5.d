/root/repo/target/debug/deps/tpp_core-cec81c120c639eb5.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

/root/repo/target/debug/deps/libtpp_core-cec81c120c639eb5.rlib: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

/root/repo/target/debug/deps/libtpp_core-cec81c120c639eb5.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/feedback.rs:
crates/core/src/params.rs:
crates/core/src/planner.rs:
crates/core/src/reward.rs:
crates/core/src/score.rs:
crates/core/src/transfer.rs:
