/root/repo/target/debug/deps/pipeline_trip-d274c005c74c21fa.d: tests/pipeline_trip.rs

/root/repo/target/debug/deps/pipeline_trip-d274c005c74c21fa: tests/pipeline_trip.rs

tests/pipeline_trip.rs:
