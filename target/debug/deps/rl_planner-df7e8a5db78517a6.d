/root/repo/target/debug/deps/rl_planner-df7e8a5db78517a6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rl_planner-df7e8a5db78517a6: crates/cli/src/main.rs

crates/cli/src/main.rs:
