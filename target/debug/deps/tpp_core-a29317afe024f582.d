/root/repo/target/debug/deps/tpp_core-a29317afe024f582.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_core-a29317afe024f582.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/feedback.rs crates/core/src/params.rs crates/core/src/planner.rs crates/core/src/reward.rs crates/core/src/score.rs crates/core/src/transfer.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/feedback.rs:
crates/core/src/params.rs:
crates/core/src/planner.rs:
crates/core/src/reward.rs:
crates/core/src/score.rs:
crates/core/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
