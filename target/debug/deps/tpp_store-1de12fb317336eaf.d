/root/repo/target/debug/deps/tpp_store-1de12fb317336eaf.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/tpp_store-1de12fb317336eaf: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
