/root/repo/target/debug/deps/tpp_datagen-c4fab243f1c5c3cc.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/debug/deps/tpp_datagen-c4fab243f1c5c3cc: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
