/root/repo/target/debug/deps/rl_planner-c8618aaa18df2963.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librl_planner-c8618aaa18df2963.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
