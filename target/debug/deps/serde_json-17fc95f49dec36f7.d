/root/repo/target/debug/deps/serde_json-17fc95f49dec36f7.d: .devstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-17fc95f49dec36f7.rlib: .devstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-17fc95f49dec36f7.rmeta: .devstubs/serde_json/src/lib.rs

.devstubs/serde_json/src/lib.rs:
