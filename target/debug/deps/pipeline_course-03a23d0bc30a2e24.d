/root/repo/target/debug/deps/pipeline_course-03a23d0bc30a2e24.d: tests/pipeline_course.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_course-03a23d0bc30a2e24.rmeta: tests/pipeline_course.rs Cargo.toml

tests/pipeline_course.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
