/root/repo/target/debug/deps/persistence-d99811b8b295d6dc.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-d99811b8b295d6dc: tests/persistence.rs

tests/persistence.rs:
