/root/repo/target/debug/deps/rl_planner-aa21eb20426335e2.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rl_planner-aa21eb20426335e2: crates/cli/src/main.rs

crates/cli/src/main.rs:
