/root/repo/target/debug/deps/persistence-411537d9f147de7c.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-411537d9f147de7c: tests/persistence.rs

tests/persistence.rs:
