/root/repo/target/debug/deps/feedback-13e19d1be46a7b08.d: tests/feedback.rs

/root/repo/target/debug/deps/feedback-13e19d1be46a7b08: tests/feedback.rs

tests/feedback.rs:
