/root/repo/target/debug/deps/obs_trace-b30c980727b29b80.d: tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-b30c980727b29b80: tests/obs_trace.rs

tests/obs_trace.rs:
