/root/repo/target/debug/deps/properties-fd2f289db11a30c6.d: crates/datagen/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fd2f289db11a30c6.rmeta: crates/datagen/tests/properties.rs Cargo.toml

crates/datagen/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
