/root/repo/target/debug/deps/tpp_baselines-e6962ba5aeb4c867.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/libtpp_baselines-e6962ba5aeb4c867.rlib: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/libtpp_baselines-e6962ba5aeb4c867.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
