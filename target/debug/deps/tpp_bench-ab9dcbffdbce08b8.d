/root/repo/target/debug/deps/tpp_bench-ab9dcbffdbce08b8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tpp_bench-ab9dcbffdbce08b8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
