/root/repo/target/debug/deps/figures-c7ffd6cf0fbd08ed.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-c7ffd6cf0fbd08ed.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
