/root/repo/target/debug/deps/tpp_datagen-0c74d6c999ee6da8.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/debug/deps/tpp_datagen-0c74d6c999ee6da8: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
