/root/repo/target/debug/deps/properties-1f99eb6761ddb5ee.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1f99eb6761ddb5ee: tests/properties.rs

tests/properties.rs:
