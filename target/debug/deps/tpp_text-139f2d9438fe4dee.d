/root/repo/target/debug/deps/tpp_text-139f2d9438fe4dee.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/tpp_text-139f2d9438fe4dee: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
