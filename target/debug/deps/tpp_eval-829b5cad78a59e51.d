/root/repo/target/debug/deps/tpp_eval-829b5cad78a59e51.d: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/extensions.rs crates/eval/src/fig1.rs crates/eval/src/fig2.rs crates/eval/src/raters.rs crates/eval/src/registry.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/sweeps.rs crates/eval/src/table4.rs crates/eval/src/table5.rs crates/eval/src/table7.rs crates/eval/src/table8.rs

/root/repo/target/debug/deps/tpp_eval-829b5cad78a59e51: crates/eval/src/lib.rs crates/eval/src/datasets.rs crates/eval/src/extensions.rs crates/eval/src/fig1.rs crates/eval/src/fig2.rs crates/eval/src/raters.rs crates/eval/src/registry.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/sweeps.rs crates/eval/src/table4.rs crates/eval/src/table5.rs crates/eval/src/table7.rs crates/eval/src/table8.rs

crates/eval/src/lib.rs:
crates/eval/src/datasets.rs:
crates/eval/src/extensions.rs:
crates/eval/src/fig1.rs:
crates/eval/src/fig2.rs:
crates/eval/src/raters.rs:
crates/eval/src/registry.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/sweeps.rs:
crates/eval/src/table4.rs:
crates/eval/src/table5.rs:
crates/eval/src/table7.rs:
crates/eval/src/table8.rs:
