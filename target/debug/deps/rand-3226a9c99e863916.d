/root/repo/target/debug/deps/rand-3226a9c99e863916.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3226a9c99e863916.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3226a9c99e863916.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
