/root/repo/target/debug/deps/tpp_bench-5ae93e6d7c29c961.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tpp_bench-5ae93e6d7c29c961: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
