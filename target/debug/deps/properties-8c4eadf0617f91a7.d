/root/repo/target/debug/deps/properties-8c4eadf0617f91a7.d: crates/rl/tests/properties.rs

/root/repo/target/debug/deps/properties-8c4eadf0617f91a7: crates/rl/tests/properties.rs

crates/rl/tests/properties.rs:
