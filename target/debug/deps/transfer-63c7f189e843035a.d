/root/repo/target/debug/deps/transfer-63c7f189e843035a.d: tests/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libtransfer-63c7f189e843035a.rmeta: tests/transfer.rs Cargo.toml

tests/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
