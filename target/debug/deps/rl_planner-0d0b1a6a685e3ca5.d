/root/repo/target/debug/deps/rl_planner-0d0b1a6a685e3ca5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librl_planner-0d0b1a6a685e3ca5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
