/root/repo/target/debug/deps/tpp_text-f67fbe1a84cfb55b.d: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libtpp_text-f67fbe1a84cfb55b.rlib: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

/root/repo/target/debug/deps/libtpp_text-f67fbe1a84cfb55b.rmeta: crates/text/src/lib.rs crates/text/src/extract.rs crates/text/src/stem.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs crates/text/src/vocab.rs

crates/text/src/lib.rs:
crates/text/src/extract.rs:
crates/text/src/stem.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
crates/text/src/vocab.rs:
