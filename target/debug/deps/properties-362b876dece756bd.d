/root/repo/target/debug/deps/properties-362b876dece756bd.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-362b876dece756bd: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
