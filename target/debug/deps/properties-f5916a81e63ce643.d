/root/repo/target/debug/deps/properties-f5916a81e63ce643.d: crates/rl/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f5916a81e63ce643.rmeta: crates/rl/tests/properties.rs Cargo.toml

crates/rl/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
