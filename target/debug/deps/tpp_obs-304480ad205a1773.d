/root/repo/target/debug/deps/tpp_obs-304480ad205a1773.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_obs-304480ad205a1773.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/level.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
