/root/repo/target/debug/deps/tpp_store-350eabeb4166374d.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/libtpp_store-350eabeb4166374d.rlib: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/libtpp_store-350eabeb4166374d.rmeta: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
