/root/repo/target/debug/deps/serde_json-60f64bfc166f5d79.d: .devstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-60f64bfc166f5d79.rmeta: .devstubs/serde_json/src/lib.rs

.devstubs/serde_json/src/lib.rs:
