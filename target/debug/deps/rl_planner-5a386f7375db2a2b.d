/root/repo/target/debug/deps/rl_planner-5a386f7375db2a2b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librl_planner-5a386f7375db2a2b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
