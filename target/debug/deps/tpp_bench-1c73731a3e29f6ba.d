/root/repo/target/debug/deps/tpp_bench-1c73731a3e29f6ba.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_bench-1c73731a3e29f6ba.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
