/root/repo/target/debug/deps/tpp_store-e8d1733bb9431dea.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/libtpp_store-e8d1733bb9431dea.rlib: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/libtpp_store-e8d1733bb9431dea.rmeta: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
