/root/repo/target/debug/deps/properties-32d7fc390e10baaf.d: crates/geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-32d7fc390e10baaf.rmeta: crates/geo/tests/properties.rs Cargo.toml

crates/geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
