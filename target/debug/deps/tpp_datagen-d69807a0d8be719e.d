/root/repo/target/debug/deps/tpp_datagen-d69807a0d8be719e.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_datagen-d69807a0d8be719e.rmeta: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
