/root/repo/target/debug/deps/tpp_baselines-72eb1dbfab2f6c82.d: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

/root/repo/target/debug/deps/tpp_baselines-72eb1dbfab2f6c82: crates/baselines/src/lib.rs crates/baselines/src/eda.rs crates/baselines/src/gold.rs crates/baselines/src/omega.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eda.rs:
crates/baselines/src/gold.rs:
crates/baselines/src/omega.rs:
