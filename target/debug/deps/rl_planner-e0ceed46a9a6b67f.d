/root/repo/target/debug/deps/rl_planner-e0ceed46a9a6b67f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librl_planner-e0ceed46a9a6b67f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
