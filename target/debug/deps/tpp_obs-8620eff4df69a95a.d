/root/repo/target/debug/deps/tpp_obs-8620eff4df69a95a.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

/root/repo/target/debug/deps/tpp_obs-8620eff4df69a95a: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/level.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/value.rs:
