/root/repo/target/debug/deps/rl_planner-3cdcfbbbd5985d11.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rl_planner-3cdcfbbbd5985d11: crates/cli/src/main.rs

crates/cli/src/main.rs:
