/root/repo/target/debug/deps/rl_planner-4990f619e4e5c4df.d: src/lib.rs

/root/repo/target/debug/deps/librl_planner-4990f619e4e5c4df.rlib: src/lib.rs

/root/repo/target/debug/deps/librl_planner-4990f619e4e5c4df.rmeta: src/lib.rs

src/lib.rs:
