/root/repo/target/debug/deps/tpp_model-1f94c1a2158e9048.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/catalog.rs crates/model/src/constraints.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/item.rs crates/model/src/plan.rs crates/model/src/prereq.rs crates/model/src/template.rs crates/model/src/topic.rs crates/model/src/toy.rs crates/model/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_model-1f94c1a2158e9048.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/catalog.rs crates/model/src/constraints.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/item.rs crates/model/src/plan.rs crates/model/src/prereq.rs crates/model/src/template.rs crates/model/src/topic.rs crates/model/src/toy.rs crates/model/src/validate.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/catalog.rs:
crates/model/src/constraints.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/instance.rs:
crates/model/src/item.rs:
crates/model/src/plan.rs:
crates/model/src/prereq.rs:
crates/model/src/template.rs:
crates/model/src/topic.rs:
crates/model/src/toy.rs:
crates/model/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
