/root/repo/target/debug/deps/cli-bbaac82bbd8c527b.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-bbaac82bbd8c527b.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_rl-planner=placeholder:rl-planner
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
