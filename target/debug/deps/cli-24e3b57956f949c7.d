/root/repo/target/debug/deps/cli-24e3b57956f949c7.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-24e3b57956f949c7: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_rl-planner=/root/repo/target/debug/rl-planner
