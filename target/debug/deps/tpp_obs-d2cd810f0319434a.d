/root/repo/target/debug/deps/tpp_obs-d2cd810f0319434a.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libtpp_obs-d2cd810f0319434a.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/level.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/value.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/level.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
