/root/repo/target/debug/deps/tpp_bench-86b3cd8bb0035d0c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtpp_bench-86b3cd8bb0035d0c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtpp_bench-86b3cd8bb0035d0c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
