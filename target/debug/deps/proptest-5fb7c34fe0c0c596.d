/root/repo/target/debug/deps/proptest-5fb7c34fe0c0c596.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5fb7c34fe0c0c596.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
