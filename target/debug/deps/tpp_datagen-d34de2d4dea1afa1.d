/root/repo/target/debug/deps/tpp_datagen-d34de2d4dea1afa1.d: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/debug/deps/libtpp_datagen-d34de2d4dea1afa1.rlib: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

/root/repo/target/debug/deps/libtpp_datagen-d34de2d4dea1afa1.rmeta: crates/datagen/src/lib.rs crates/datagen/src/itineraries.rs crates/datagen/src/names.rs crates/datagen/src/synthetic.rs crates/datagen/src/trips.rs crates/datagen/src/univ1.rs crates/datagen/src/univ2.rs

crates/datagen/src/lib.rs:
crates/datagen/src/itineraries.rs:
crates/datagen/src/names.rs:
crates/datagen/src/synthetic.rs:
crates/datagen/src/trips.rs:
crates/datagen/src/univ1.rs:
crates/datagen/src/univ2.rs:
