/root/repo/target/debug/deps/tpp_store-6337071b62991bfb.d: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

/root/repo/target/debug/deps/tpp_store-6337071b62991bfb: crates/store/src/lib.rs crates/store/src/error.rs crates/store/src/json.rs crates/store/src/policy.rs

crates/store/src/lib.rs:
crates/store/src/error.rs:
crates/store/src/json.rs:
crates/store/src/policy.rs:
