/root/repo/target/debug/deps/bytes-68dc3d3cb645d333.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-68dc3d3cb645d333.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
