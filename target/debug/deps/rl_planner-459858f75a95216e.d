/root/repo/target/debug/deps/rl_planner-459858f75a95216e.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rl_planner-459858f75a95216e: crates/cli/src/main.rs

crates/cli/src/main.rs:
