/root/repo/target/debug/deps/paper_examples-f65120ce6c177a09.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-f65120ce6c177a09: tests/paper_examples.rs

tests/paper_examples.rs:
