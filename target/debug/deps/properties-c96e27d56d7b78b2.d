/root/repo/target/debug/deps/properties-c96e27d56d7b78b2.d: crates/datagen/tests/properties.rs

/root/repo/target/debug/deps/properties-c96e27d56d7b78b2: crates/datagen/tests/properties.rs

crates/datagen/tests/properties.rs:
