/root/repo/target/debug/deps/pipeline_course-579e89bbe0555a3d.d: tests/pipeline_course.rs

/root/repo/target/debug/deps/pipeline_course-579e89bbe0555a3d: tests/pipeline_course.rs

tests/pipeline_course.rs:
