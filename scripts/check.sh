#!/usr/bin/env bash
# Full local gate: everything CI runs, in the same order.
# Usage: scripts/check.sh [--quick]   (--quick skips the release build)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q
run cargo test -q -p tpp-store --test atomicity
# Golden equivalence: the incremental hot-path engine must stay
# bit-identical to the naive engine on all four benchmark datasets.
run cargo test -q -p tpp-core --test equivalence
run cargo test -q -p rl-planner-cli --test checkpoint_resume
run cargo test -q -p tpp-serve --test chaos
# Policy cache: duplicate bursts coalesce onto one training run,
# eviction honours the byte bound, checkpoint rotation invalidates.
run cargo test -q -p tpp-serve --test cache
# NDJSON framing fuzz: every line in, one well-formed response out —
# including the seeded TCP corpus over real sockets with partial writes.
run cargo test -q -p tpp-serve --test fuzz_framing
# TCP front end: admission shed with echoed ids, slow-loris timeouts,
# framing rejects keeping connections alive, graceful drain answering
# in-flight requests while refusing new connects.
run cargo test -q -p tpp-serve --test tcp
# Observability: chaos storm leaves flight-recorder post-mortems, the
# `metrics` op's Prometheus text parses (queue-wait + per-phase
# histograms), and a sampled request reconstructs a full span tree.
run cargo test -q -p tpp-serve --test tracing
# Sink-layer concurrency: lossless ordered collection and per-thread
# trace isolation under parallel emission.
run cargo test -q -p tpp-obs --test concurrency
# Chaos smoke: 200 NDJSON requests through the real daemon with panic,
# stall and corruption injection — zero deaths, zero unanswered.
run cargo test -q -p rl-planner-cli --test serve_daemon
# Metrics-schema smoke: the real daemon under --trace emits JSONL where
# every line parses, every serve event carries trace ids, and the
# --metrics snapshot re-renders as Prometheus text via `obs`.
run cargo test -q -p rl-planner-cli --test obs_schema
# Self-healing suite: killed workers respawn with their requests
# rescued, a dead pool stops accepting instead of starving, wedged
# workers are replaced, the checkpoint-store breaker trips and
# recovers, and repeat-panicking keys are quarantined.
run cargo test -q -p tpp-serve --test supervise
# Load harness smoke: open-loop TCP storm under chaos through the real
# binary; fails on any connection closed without a terminal response or
# a daemon that stops accepting after the storm — including the
# worker-killing storm gated on restarts and breaker recovery.
run cargo test -q -p rl-planner-cli --test load_bench
if [[ $quick -eq 0 ]]; then
  run cargo build --release -p rl-planner-cli
  run ./target/release/rl-planner bench --load --rate 200 --duration-s 2 \
    --episodes 40 --deadline-ms 250 --workers 4 --capacity 128 \
    --chaos 'panic@10,stall@25:100,flaky@40' --seed 7 -q \
    --out /tmp/BENCH_load_check.json
  # Worker-killing storm: must report >=1 supervisor respawn and a
  # breaker that tripped open and closed again, or exit 1.
  run ./target/release/rl-planner bench --load --rate 120 --duration-s 3 \
    --episodes 20 --deadline-ms 150 --workers 4 --capacity 128 \
    --chaos 'kill@10,kill@40,wedge@25:300,flaky@70:40' \
    --profile 'hot=30,cold=10,recommend=40,malformed=10,slow=10' \
    --require-restarts --require-breaker-recovered --seed 11 -q \
    --flight-dir /tmp/tpp-flight-check \
    --out /tmp/BENCH_selfheal_check.json
  # Hot-heavy batching storm, run unbatched then batched: must form
  # real batches and amortize policy resolutions, or exit 1; the
  # report carries before/after p99 under a `batching` object.
  run ./target/release/rl-planner bench --load --rate 600 --duration-s 2 \
    --episodes 400 --deadline-ms 500 --workers 2 --capacity 128 \
    --profile hot-heavy --seed 7 -q \
    --require-batching --compare-batching \
    --out /tmp/BENCH_batching_check.json
fi
echo "All checks passed."
