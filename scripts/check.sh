#!/usr/bin/env bash
# Full local gate: everything CI runs, in the same order.
# Usage: scripts/check.sh [--quick]   (--quick skips the release build)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q
run cargo test -q -p tpp-store --test atomicity
# Golden equivalence: the incremental hot-path engine must stay
# bit-identical to the naive engine on all four benchmark datasets.
run cargo test -q -p tpp-core --test equivalence
run cargo test -q -p rl-planner-cli --test checkpoint_resume
run cargo test -q -p tpp-serve --test chaos
# Policy cache: duplicate bursts coalesce onto one training run,
# eviction honours the byte bound, checkpoint rotation invalidates.
run cargo test -q -p tpp-serve --test cache
# NDJSON framing fuzz: every line in, one well-formed response out.
run cargo test -q -p tpp-serve --test fuzz_framing
# Observability: chaos storm leaves flight-recorder post-mortems, the
# `metrics` op's Prometheus text parses (queue-wait + per-phase
# histograms), and a sampled request reconstructs a full span tree.
run cargo test -q -p tpp-serve --test tracing
# Sink-layer concurrency: lossless ordered collection and per-thread
# trace isolation under parallel emission.
run cargo test -q -p tpp-obs --test concurrency
# Chaos smoke: 200 NDJSON requests through the real daemon with panic,
# stall and corruption injection — zero deaths, zero unanswered.
run cargo test -q -p rl-planner-cli --test serve_daemon
# Metrics-schema smoke: the real daemon under --trace emits JSONL where
# every line parses, every serve event carries trace ids, and the
# --metrics snapshot re-renders as Prometheus text via `obs`.
run cargo test -q -p rl-planner-cli --test obs_schema
if [[ $quick -eq 0 ]]; then
  run cargo build --release -p rl-planner-cli
fi
echo "All checks passed."
