#!/usr/bin/env bash
# Training-throughput benchmark: times full learn() runs on the four
# benchmark datasets plus the city-scale catalogs (city-1k, city-10k),
# then writes the comparison to BENCH_train.json.
#
# Seed-scale rows run twice — incremental hot-path engine vs the naive
# pre-incremental engine — and report episodes/sec, speedup, and the
# bit-identical-score sanity bit (the golden equivalence suite,
# crates/core/tests/equivalence.rs, pins that the two agree). City-scale
# rows skip the naive engine (quadratic prefix rescans do not finish at
# 10k items) and instead gate on memory: --max-q-bytes caps the resident
# Q-table, so a dense n² allocation sneaking into the sparse path fails
# the run instead of silently eating ~800 MB. 64 MB cleanly separates
# the sparse table (~hundreds of KB at 10k items) from a dense one.
#
# Usage: scripts/bench.sh [--episodes N] [--seed N] [--out FILE]
#                         [--max-q-bytes N]
# Defaults: 2000 episodes (sub-millisecond runs are too noisy), seed 0,
# 64 MB Q-table cap, BENCH_train.json in the repo root. Extra flags
# pass through.
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
[[ " $* " == *" --episodes "* ]] || args+=(--episodes 2000)
[[ " $* " == *" --out "* ]] || args+=(--out BENCH_train.json)
[[ " $* " == *" --max-q-bytes "* ]] || args+=(--max-q-bytes 64000000)

echo "==> cargo build --release -p rl-planner-cli"
cargo build --release -p rl-planner-cli
echo "==> rl-planner bench ${args[*]}"
./target/release/rl-planner bench -q "${args[@]}"
