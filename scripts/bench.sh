#!/usr/bin/env bash
# Training-throughput benchmark: times full learn() runs on all four
# benchmark datasets with the incremental hot-path engine and with the
# naive pre-incremental engine, then writes the comparison to
# BENCH_train.json (episodes/sec, speedup, bit-identical-score sanity
# bit). The two engines produce identical plans and scores — the golden
# equivalence suite (crates/core/tests/equivalence.rs) pins that — so
# the speedup column is a pure like-for-like measurement.
#
# Usage: scripts/bench.sh [--episodes N] [--seed N] [--out FILE]
# Defaults: 2000 episodes (sub-millisecond runs are too noisy), seed 0,
# BENCH_train.json in the repo root. Extra flags pass through.
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
[[ " $* " == *" --episodes "* ]] || args+=(--episodes 2000)
[[ " $* " == *" --out "* ]] || args+=(--out BENCH_train.json)

echo "==> cargo build --release -p rl-planner-cli"
cargo build --release -p rl-planner-cli
echo "==> rl-planner bench ${args[*]}"
./target/release/rl-planner bench -q "${args[@]}"
