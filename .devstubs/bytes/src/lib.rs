//! Dev-only offline stand-in for `bytes`: a *working* implementation of
//! the subset this workspace uses (`Bytes`, `BytesMut`, little-endian
//! `Buf`/`BufMut` accessors), backed by `Vec<u8>`.

use std::ops::Deref;

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}
