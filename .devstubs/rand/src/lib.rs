//! Dev-only offline stand-in for `rand` 0.9 (API subset used by this
//! workspace). Deterministic xoshiro256** generator; NOT the real
//! StdRng stream, so learned artifacts differ numerically from builds
//! against the real crate, but all qualitative behaviour holds.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

mod sealed_dist {
    use super::RngCore;

    pub trait StandardValue: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardValue for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardValue for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl StandardValue for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardValue for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl StandardValue for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl StandardValue for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub trait SampleRange<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_range!(usize, u64, u32, u16, u8, i64, i32);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            self.start + f64::sample(rng) * (self.end - self.start)
        }
    }
}

pub use sealed_dist::{SampleRange, StandardValue};

pub trait Rng: RngCore {
    fn random<T: StandardValue>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 (the reference seeding).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub type SmallRng = StdRng;
}
