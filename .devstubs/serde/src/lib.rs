//! Dev-only offline stand-in for `serde`: blanket-implemented marker
//! traits so `#[derive(Serialize, Deserialize)]` and generic bounds
//! typecheck. Actual (de)serialization is NOT available — the stub
//! `serde_json` returns errors at runtime.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub use crate::Deserialize;

    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
