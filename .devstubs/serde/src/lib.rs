//! Dev-only offline stand-in for `serde` — but a *functional* one.
//!
//! Unlike a marker-trait stub, this crate implements a real (if
//! simplified) serialization framework: values are converted to and
//! from an in-memory [`Content`] tree, and the sibling `serde_derive`
//! stub generates genuine impls for `#[derive(Serialize, Deserialize)]`.
//! The sibling `serde_json` stub then maps [`Content`] to and from JSON
//! text, so persistence actually works in offline builds and the files
//! it writes are interchangeable with ones written by the real crates
//! (externally-tagged enums, transparent newtypes, skipped fields).
//!
//! Differences from real serde are confined to what this workspace does
//! not use: no zero-copy borrowing, no custom `Serializer`/`Visitor`
//! implementations, no non-string map keys.

use std::fmt;

/// The simplified serde data model: a JSON-shaped value tree.
///
/// Maps preserve insertion order so struct fields serialize in
/// declaration order, like real `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable message, like
/// `serde::de::Error` rendered through `Display`.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// "invalid type: expected X while deserializing Y" constructor.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("invalid type: expected {what} for {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

/// A type that can be rebuilt from the [`Content`] data model.
///
/// The lifetime parameter mirrors real serde's signature so generic
/// bounds written against the real crate compile unchanged; this stub
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

pub mod de {
    pub use crate::Deserialize;

    /// Owned deserialization, as in real serde: a blanket alias for
    /// `for<'de> Deserialize<'de>`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Helpers used by `serde_derive`-generated code (public but not part of
// the real serde API surface; generated code references them by path).
// ---------------------------------------------------------------------

/// Deserializes a value of inferred type from a content node.
pub fn __from<T: for<'de> Deserialize<'de>>(c: &Content) -> Result<T, DeError> {
    T::deserialize_content(c)
}

/// Looks up `key` in a struct map and deserializes it; errors name the
/// struct and the missing field, like real serde.
pub fn __field<T: for<'de> Deserialize<'de>>(
    map: &[(String, Content)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize_content(v)
            .map_err(|e| DeError(format!("{} (in field `{ty}.{key}`)", e.0))),
        None => Err(DeError(format!("missing field `{key}` in `{ty}`"))),
    }
}

// ---------------------------------------------------------------------
// Impls for primitives and std containers (the subset this workspace
// serializes).
// ---------------------------------------------------------------------

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::I64(n) => Ok(*n as $t),
                    // Real serde_json writes non-finite floats as null.
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

macro_rules! impl_string_map {
    ($($map:ident),*) => {$(
        impl<V: Serialize> Serialize for std::collections::$map<String, V> {
            fn serialize_content(&self) -> Content {
                Content::Map(
                    self.iter()
                        .map(|(k, v)| (k.clone(), v.serialize_content()))
                        .collect(),
                )
            }
        }
        impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::$map<String, V> {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Map(entries) => entries
                        .iter()
                        .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                        .collect(),
                    _ => Err(DeError::expected("map", stringify!($map))),
                }
            }
        }
    )*};
}
impl_string_map!(HashMap, BTreeMap);

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($t::deserialize_content(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected("tuple sequence", "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", "unit")),
        }
    }
}
