//! Dev-only offline stand-in for `criterion` 0.3: compiles the bench
//! targets and runs each registered closure once (no statistics).

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(group: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{group}/{param}"))
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let _ = t0.elapsed();
    }

    pub fn iter_with_setup<S, O, P: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: P,
        mut f: F,
    ) {
        let s = setup();
        black_box(f(s));
    }
}

pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{id} (stub: single run)", self.name);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{id} (stub: single run)", self.name);
        f(&mut Bencher, input);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {id} (stub: single run)");
        f(&mut Bencher);
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
