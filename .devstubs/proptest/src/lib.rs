//! Dev-only offline stand-in for `proptest` — functional.
//!
//! Unlike a compile-only stub, this crate actually *runs* property
//! bodies: `proptest!` expands each property into a `#[test]` that
//! draws inputs from the strategies with a deterministic per-test RNG
//! (seeded from the test name, so runs are reproducible) and executes
//! the body for the configured number of cases. `prop_assert*` failures
//! report the case number and the generated inputs.
//!
//! Compared to the real crate there is no shrinking, no persisted
//! failure corpus, and no fresh entropy between runs — networked CI
//! with real proptest remains the authority. Unsupported combinators
//! are a `compile_error!`, never a silent skip.

use std::fmt;
use std::marker::PhantomData;

// ---------------------------------------------------------------------
// Deterministic test RNG (splitmix64 over an FNV-1a seed of the name)
// ---------------------------------------------------------------------

pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi]` (inclusive), `lo <= hi`.
    pub fn u128_in(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128 + 1;
        if span == 0 {
            // Full 128-bit span can't happen for the lexical ranges we
            // support (they come from <= 64-bit types).
            return lo.wrapping_add(self.next_u64() as i128);
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: arbitrary values of `T`, implemented per type.
pub struct AnyOf<T>(pub PhantomData<T>);

pub fn any<T>() -> AnyOf<T>
where
    AnyOf<T>: Strategy,
{
    AnyOf(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyOf<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        let mag = 10f64.powi(rng.u128_in(-6, 9) as i32);
        (rng.unit_f64() * 2.0 - 1.0) * mag
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u128_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.u128_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
range_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Length bounds for `prop::collection::vec` (inclusive).
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

pub mod prop {
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        pub struct VecStrategy<S: Strategy> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.u128_in(self.size.min as i128, self.size.max as i128) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        pub struct OptionStrategy<S: Strategy>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod bool {
        pub const ANY: crate::AnyOf<bool> = crate::AnyOf(std::marker::PhantomData);
    }

    pub mod num {
        pub mod f64 {
            pub const ANY: crate::AnyOf<f64> = crate::AnyOf(std::marker::PhantomData);
        }
        pub mod usize {
            pub const ANY: crate::AnyOf<usize> = crate::AnyOf(std::marker::PhantomData);
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: the stub runs everywhere
        // including debug builds; networked CI with the real crate does
        // the heavy lifting.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[doc(hidden)]
pub fn __run_property<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = TestRng::from_name(name);
    for i in 0..cfg.cases {
        let (inputs, result) = case(&mut rng);
        if let Err(e) = result {
            panic!(
                "property `{name}` failed at case {i}/{}:\n  {e}\n  inputs: {inputs}",
                cfg.cases
            );
        }
    }
}

/// Expands each property into a deterministic multi-case `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({$crate::ProptestConfig::default()} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::__run_property(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__inputs, __result)
            });
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(
                ::std::format!("prop_assert!({}) failed", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(::std::format!(
                "prop_assert_eq! failed: `{}` = {:?}, `{}` = {:?}",
                stringify!($left), __l, stringify!($right), __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($tt:tt)*) => {
        compile_error!("prop_oneof unsupported by the offline proptest stub")
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, AnyOf, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}
