//! Dev-only offline stand-in for `proptest`: enough surface for the
//! workspace's property-test files to *compile*. The `proptest!` macro
//! expands to nothing, so property tests are skipped (not run) under
//! the stub.

use std::marker::PhantomData;

pub trait Strategy {
    type Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    #[allow(dead_code)]
    inner: S,
    #[allow(dead_code)]
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

pub struct AnyOf<T>(PhantomData<T>);

impl<T> Strategy for AnyOf<T> {
    type Value = T;
}

#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub struct SizeRange;

impl From<usize> for SizeRange {
    fn from(_: usize) -> Self {
        SizeRange
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(_: std::ops::Range<usize>) -> Self {
        SizeRange
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(_: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
}

pub mod prop {
    pub mod collection {
        use crate::Strategy;
        use std::marker::PhantomData;

        pub struct VecStrategy<S: Strategy>(PhantomData<S>);

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
        }

        pub fn vec<S: Strategy>(
            _element: S,
            _size: impl Into<crate::SizeRange>,
        ) -> VecStrategy<S> {
            VecStrategy(PhantomData)
        }
    }

    pub mod option {
        use crate::Strategy;
        use std::marker::PhantomData;

        pub struct OptionStrategy<S: Strategy>(PhantomData<S>);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
        }

        pub fn of<S: Strategy>(_inner: S) -> OptionStrategy<S> {
            OptionStrategy(PhantomData)
        }
    }

    pub mod bool {
        pub const ANY: crate::AnyOf<bool> = crate::AnyOf(std::marker::PhantomData);
    }

    pub mod num {
        pub mod f64 {
            pub const ANY: crate::AnyOf<f64> = crate::AnyOf(std::marker::PhantomData);
        }
        pub mod usize {
            pub const ANY: crate::AnyOf<usize> = crate::AnyOf(std::marker::PhantomData);
        }
    }
}

pub fn any<T>() -> AnyOf<T> {
    AnyOf(PhantomData)
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, f64);

/// No-op expansion: property tests are skipped under the offline stub.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($tt:tt)*) => {
        compile_error!("prop_oneof unsupported by offline stub")
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, AnyOf, Just, ProptestConfig, Strategy,
    };
}
