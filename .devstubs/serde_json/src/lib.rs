//! Dev-only offline stand-in for `serde_json`: typechecks, but every
//! call fails at runtime (the stub `serde` cannot drive real codecs).

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

pub struct Error(&'static str);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn unavailable<T>() -> Result<T> {
    Err(Error("offline dev stub; real serialization unavailable"))
}

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    unavailable()
}

pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    unavailable()
}

pub fn to_vec<T: ?Sized + Serialize>(_value: &T) -> Result<Vec<u8>> {
    unavailable()
}

pub fn to_vec_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<Vec<u8>> {
    unavailable()
}

pub fn from_str<'a, T: Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unavailable()
}

pub fn from_slice<'a, T: Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    unavailable()
}

pub fn from_reader<R: std::io::Read, T: DeserializeOwned>(_rdr: R) -> Result<T> {
    unavailable()
}
