//! Dev-only offline stand-in for `serde_json` — functional.
//!
//! Implements a real JSON writer and parser over the stub `serde`'s
//! [`Content`] data model, following real serde_json conventions:
//! compact `to_string` / 2-space-indented pretty output, insertion-order
//! maps, non-finite floats written as `null`, standard string escapes
//! (including `\uXXXX` and surrogate pairs on input). Files written by
//! this stub parse with the real crate and vice versa for the shapes
//! this workspace serializes. Not supported (unused here): `Value`,
//! `json!`, streaming, borrowed deserialization.

use serde::de::DeserializeOwned;
use serde::{Content, Deserialize, Serialize};
use std::fmt;

pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.serialize_content(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize_content(), &mut out, 0);
    Ok(out)
}

pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // Real serde_json writes non-finite floats as null.
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    // Keep floats visibly floats ("3.0", not "3"), like ryu.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::deserialize_content(&content)?)
}

pub fn from_slice<'a, T: Deserialize<'a>>(v: &'a [u8]) -> Result<T> {
    let s = std::str::from_utf8(v).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

pub fn from_reader<R: std::io::Read, T: DeserializeOwned>(mut rdr: R) -> Result<T> {
    let mut buf = Vec::new();
    rdr.read_to_end(&mut buf)
        .map_err(|e| Error(format!("read error: {e}")))?;
    let s = std::str::from_utf8(&buf).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    let content = parse(s)?;
    Ok(T::deserialize_content(&content)?)
}

fn parse(s: &str) -> Result<Content> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte offset {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("invalid literal (expected `{word}`)"))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated as UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid unicode escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number text");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Content::F64(v)),
            Err(_) => self.err("invalid number"),
        }
    }
}
