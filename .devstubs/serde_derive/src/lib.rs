//! Dev-only offline stand-in for `serde_derive` — functional.
//!
//! Generates real `Serialize`/`Deserialize` impls against the sibling
//! stub `serde`'s [`Content`] data model, by hand-parsing the item's
//! token stream (no `syn`/`quote` available offline). Supports the
//! shapes this workspace derives on: plain structs with named fields,
//! tuple structs, and enums with unit / newtype / tuple / struct
//! variants, plus the `#[serde(skip)]` and `#[serde(transparent)]`
//! attributes. The wire format matches real serde_json conventions
//! (externally-tagged enums, newtype structs as their inner value,
//! skipped fields defaulted), so files interoperate with real-crate
//! builds. Anything unsupported is a `compile_error!`, never a silent
//! format divergence.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct TypeDef {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&TypeDef) -> String) -> TokenStream {
    match parse_type(input) {
        Ok(def) => {
            let code = gen(&def);
            code.parse().unwrap_or_else(|e| {
                compile_error(&format!("serde_derive stub generated invalid code: {e}"))
            })
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Flags extracted from `#[serde(...)]` attributes at one position.
#[derive(Default)]
struct SerdeFlags {
    skip: bool,
    transparent: bool,
}

/// Consumes attributes starting at `toks[i]`, returning the new index.
/// Doc comments and non-serde attributes are ignored; unsupported serde
/// arguments are an error so we never silently diverge from the real
/// crate's wire format.
fn eat_attrs(toks: &[TokenTree], mut i: usize, flags: &mut SerdeFlags) -> Result<usize, String> {
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let group = match toks.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    _ => return Err("expected [...] after #".into()),
                };
                scan_attr(group, flags)?;
                i += 2;
            }
            _ => break,
        }
    }
    Ok(i)
}

fn scan_attr(group: &Group, flags: &mut SerdeFlags) -> Result<(), String> {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // doc comment, cfg, etc.
    }
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return Err("malformed #[serde(...)] attribute".into()),
    };
    for tok in args.stream() {
        match &tok {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => flags.skip = true,
                "transparent" => flags.transparent = true,
                other => {
                    return Err(format!(
                        "serde_derive stub: unsupported serde attribute `{other}` \
                         (only `skip` and `transparent` are implemented)"
                    ))
                }
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "serde_derive stub: unsupported serde attribute syntax `{other}`"
                ))
            }
        }
    }
    Ok(())
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at `toks[i]`.
fn eat_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips type tokens until a top-level `,`, returning the index after
/// the comma (or the end). Generic angle brackets are tracked; groups
/// are atomic tokens so they need no tracking.
fn eat_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_type(input: TokenStream) -> Result<TypeDef, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut flags = SerdeFlags::default();
    // Outer attributes and visibility, in any interleaving rustc allows.
    loop {
        i = eat_attrs(&toks, i, &mut flags)?;
        let after_vis = eat_vis(&toks, i);
        if after_vis != i {
            i = after_vis;
            continue;
        }
        break;
    }
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stub: generic type `{name}` is not supported"
            ));
        }
    }
    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g)?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };
    // `transparent` only changes the format for multi-field shapes we
    // don't support; newtype structs already serialize as their inner
    // value, so the flag needs no special handling beyond acceptance.
    let _ = flags.transparent;
    Ok(TypeDef { name, body })
}

fn parse_named_fields(g: &Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut flags = SerdeFlags::default();
        i = eat_attrs(&toks, i, &mut flags)?;
        i = eat_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing attributes only — malformed, let rustc complain
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        i = eat_type(&toks, i);
        out.push(Field {
            name: name.trim_start_matches("r#").to_owned(),
            skip: flags.skip,
        });
    }
    Ok(out)
}

/// Counts fields of a tuple struct / tuple variant: the number of
/// non-empty top-level comma-separated segments.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let next = eat_type(&toks, i);
        // eat_type advances past at least the comma when a segment is
        // non-empty; an immediate comma means an empty segment.
        count += 1;
        i = next.max(i + 1);
    }
    count
}

fn parse_variants(g: &Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut flags = SerdeFlags::default();
        i = eat_attrs(&toks, i, &mut flags)?;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        out.push(Variant { name, kind });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const S: &str = "::serde::Serialize::serialize_content";
const C: &str = "::serde::Content";
const OK: &str = "::std::result::Result::Ok";
const ERR: &str = "::std::result::Result::Err";

fn str_content(s: &str) -> String {
    format!("{C}::Str(::std::string::String::from({s:?}))")
}

fn map_content(entries: &[String]) -> String {
    if entries.is_empty() {
        format!("{C}::Map(::std::vec::Vec::new())")
    } else {
        format!("{C}::Map(::std::vec::Vec::from([{}]))", entries.join(", "))
    }
}

fn seq_content(items: &[String]) -> String {
    if items.is_empty() {
        format!("{C}::Seq(::std::vec::Vec::new())")
    } else {
        format!("{C}::Seq(::std::vec::Vec::from([{}]))", items.join(", "))
    }
}

fn entry(key: &str, value: String) -> String {
    format!("(::std::string::String::from({key:?}), {value})")
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| entry(&f.name, format!("{S}(&self.{})", f.name)))
                .collect();
            map_content(&entries)
        }
        Body::TupleStruct(1) => format!("{S}(&self.0)"),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{S}(&self.{i})")).collect();
            seq_content(&items)
        }
        Body::UnitStruct => format!("{C}::Null"),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vname} => {},", str_content(vname))
                        }
                        VariantKind::Tuple(1) => {
                            let val = format!("{S}(__f0)");
                            format!(
                                "{name}::{vname}(__f0) => {},",
                                map_content(&[entry(vname, val)])
                            )
                        }
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{S}({b})")).collect();
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                map_content(&[entry(vname, seq_content(&items))])
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| entry(&f.name, format!("{S}({})", f.name)))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                binds.join(", "),
                                map_content(&[entry(vname, map_content(&entries))])
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, name)).collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(__m) => {OK}({name} {{ {} }}),\n\
                     _ => {ERR}(::serde::DeError::expected(\"map\", {name:?})),\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => format!("{OK}({name}(::serde::__from(__c)?))"),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("::serde::__from(&__s[{i}])?")).collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => {OK}({name}({})),\n\
                     _ => {ERR}(::serde::DeError::expected(\"sequence of {n}\", {name:?})),\n\
                 }}",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("{OK}({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => {OK}({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let path = format!("{name}::{vname}");
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => {OK}({path}(::serde::__from(__v)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> =
                                (0..*n).map(|i| format!("::serde::__from(&__s[{i}])?")).collect();
                            Some(format!(
                                "{vname:?} => match __v {{\n\
                                     ::serde::Content::Seq(__s) if __s.len() == {n} => {OK}({path}({})),\n\
                                     _ => {ERR}(::serde::DeError::expected(\"sequence of {n}\", {path:?})),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, &path)).collect();
                            Some(format!(
                                "{vname:?} => match __v {{\n\
                                     ::serde::Content::Map(__fm) => {OK}({path} {{ {} }}),\n\
                                     _ => {ERR}(::serde::DeError::expected(\"map\", {path:?})),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => {ERR}(::serde::DeError(::std::format!(\n\
                             \"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = &__m[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => {ERR}(::serde::DeError(::std::format!(\n\
                                 \"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => {ERR}(::serde::DeError::expected(\"variant string or single-key map\", {name:?})),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize_content(__c: &::serde::Content)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// One `field: <expr>` initializer for a named-field body. The map
/// binding is `__m` for structs and `__fm` for struct variants — pick
/// via the context string (variant paths contain `::`).
fn field_init(f: &Field, ty_path: &str) -> String {
    if f.skip {
        return format!("{}: ::std::default::Default::default()", f.name);
    }
    let map_bind = if ty_path.contains("::") { "__fm" } else { "__m" };
    format!(
        "{}: ::serde::__field({map_bind}, {:?}, {ty_path:?})?",
        f.name, f.name
    )
}
